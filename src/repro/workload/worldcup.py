"""Synthetic Soccer World Cup 1998 access logs, plus a real-log parser.

The paper processed thirteen Friday logs of the 1998 World Cup web site
into: the 25,000 objects present in every log, per-client per-object
request counts, and object size mean/variance; then it kept the top 500
clients.  The original trace (ita.ee.lbl.gov) cannot ship with this
repository, so :class:`WorldCupLogGenerator` emits Apache common-log-format
lines with the trace's published aggregate character:

* object popularity is Zipf-like (alpha ~ 0.85),
* object sizes are heavy-tailed (lognormal) with controllable variance —
  the paper notes the size variance "helped to instill enough miscellanies
  to benchmark object updates",
* client activity is itself Zipf-distributed (a few proxies dominate),
* timestamps follow a 24-hour diurnal load curve.

:func:`parse_common_log` ingests either these synthetic lines or a real
common-log-format file and produces a :class:`~repro.workload.trace.Trace`,
so the downstream pipeline is identical for both.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator, spawn_children
from repro.utils.validation import check_fraction, check_positive, check_positive_int
from repro.workload.trace import ObjectCatalog, Request, RequestStream, Trace
from repro.workload.zipf import zipf_weights

#: Apache common log format:
#: host ident authuser [date] "request" status bytes
_LOG_RE = re.compile(
    r"^(?P<host>\S+) \S+ \S+ \[(?P<ts>[^\]]+)\] "
    r"\"(?P<method>[A-Z]+) (?P<path>\S+)(?: HTTP/[\d.]+)?\" "
    r"(?P<status>\d{3}) (?P<bytes>\d+|-)$"
)

#: HTTP methods treated as object updates. The WC'98 site was read-mostly;
#: the paper injects updates separately ("updates were randomly pushed onto
#: different servers"), which the generator's ``write_fraction`` models.
_WRITE_METHODS = frozenset({"PUT", "POST", "DELETE"})


def _diurnal_weights(n_bins: int = 24) -> np.ndarray:
    """Hour-of-day load curve: low at night, peaking in the evening
    (match broadcasts), as in the WC'98 workload characterization."""
    hours = np.arange(n_bins)
    w = 1.0 + 0.8 * np.sin((hours - 8.0) * np.pi / 12.0) ** 2 + 0.6 * np.exp(
        -0.5 * ((hours - 20.0) / 2.5) ** 2
    )
    return w / w.sum()


@dataclass
class WorldCupLogGenerator:
    """Generator of synthetic WC'98-style access-log lines.

    Parameters
    ----------
    n_objects:
        Catalog size (paper: 25,000; scale down for laptop runs).
    n_clients:
        Distinct clients (paper keeps the top 500).
    mean_object_size, size_cv:
        Lognormal object-size model: mean size in data units and
        coefficient of variation (std / mean).
    popularity_alpha:
        Zipf exponent for object popularity.
    client_alpha:
        Zipf exponent for per-client activity skew.
    write_fraction:
        Probability a request is an update (PUT) rather than a read (GET).
    seed:
        Root seed; all internal streams derive from it.
    """

    n_objects: int = 1000
    n_clients: int = 100
    mean_object_size: float = 12.0
    size_cv: float = 1.0
    popularity_alpha: float = 0.85
    client_alpha: float = 0.6
    write_fraction: float = 0.05
    seed: SeedLike = None

    def __post_init__(self) -> None:
        self.n_objects = check_positive_int(self.n_objects, "n_objects")
        self.n_clients = check_positive_int(self.n_clients, "n_clients")
        check_positive(self.mean_object_size, "mean_object_size")
        if self.size_cv < 0:
            raise ConfigurationError(f"size_cv must be >= 0, got {self.size_cv}")
        check_positive(self.popularity_alpha, "popularity_alpha")
        check_positive(self.client_alpha, "client_alpha")
        check_fraction(self.write_fraction, "write_fraction", open_right=True)

        rngs = spawn_children(as_generator(self.seed), 4)
        self._rng_sizes, self._rng_obj, self._rng_client, self._rng_misc = rngs

        # Lognormal sizes with the requested mean and CV, floored at 1 unit.
        if self.size_cv == 0:
            sizes = np.full(self.n_objects, round(self.mean_object_size))
        else:
            sigma2 = math.log(1.0 + self.size_cv**2)
            mu = math.log(self.mean_object_size) - sigma2 / 2.0
            sizes = np.round(
                self._rng_sizes.lognormal(mu, math.sqrt(sigma2), size=self.n_objects)
            )
        self.catalog = ObjectCatalog(sizes=np.maximum(1, sizes).astype(np.int64))

        self._obj_weights = zipf_weights(self.n_objects, self.popularity_alpha)
        # Popularity rank is shuffled relative to object id so size and
        # popularity are uncorrelated (as in the real trace).
        self._obj_perm = self._rng_obj.permutation(self.n_objects)
        self._client_weights = zipf_weights(self.n_clients, self.client_alpha)
        self._client_perm = self._rng_client.permutation(self.n_clients)
        self._hour_weights = _diurnal_weights()

    # -- sampling ---------------------------------------------------------

    def sample_requests(self, n_requests: int) -> list[Request]:
        """Draw ``n_requests`` synthetic requests (vectorized)."""
        if n_requests < 0:
            raise ConfigurationError("n_requests must be >= 0")
        return self._sample_batch(n_requests)

    def iter_requests(
        self, n_requests: int, *, chunk_size: int = 65_536
    ) -> Iterator[Request]:
        """Yield ``n_requests`` requests lazily, drawing ``chunk_size``
        at a time.

        Memory stays bounded by one chunk, which is what lets serving
        campaigns stream millions of requests.  The draw is a
        deterministic function of ``(seed, chunk_size)``: with
        ``chunk_size >= n_requests`` it is byte-identical to
        :meth:`sample_requests`; smaller chunks reorder the underlying
        RNG consumption (and sort timestamps per chunk), so they are a
        *different* — but equally reproducible — sample.
        """
        if n_requests < 0:
            raise ConfigurationError("n_requests must be >= 0")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        remaining = n_requests
        while remaining > 0:
            batch = self._sample_batch(min(chunk_size, remaining))
            remaining -= len(batch)
            yield from batch

    def request_stream(
        self, n_requests: int, *, chunk_size: int = 65_536
    ) -> "RequestStream":
        """Wrap :meth:`iter_requests` as a single-pass
        :class:`~repro.workload.trace.RequestStream`."""
        return RequestStream(
            catalog=self.catalog,
            requests=self.iter_requests(n_requests, chunk_size=chunk_size),
            n_clients=self.n_clients,
            length=n_requests,
        )

    def _sample_batch(self, n_requests: int) -> list[Request]:
        if n_requests == 0:
            return []
        objs = self._obj_perm[
            self._rng_obj.choice(self.n_objects, size=n_requests, p=self._obj_weights)
        ]
        clients = self._client_perm[
            self._rng_client.choice(
                self.n_clients, size=n_requests, p=self._client_weights
            )
        ]
        writes = self._rng_misc.random(n_requests) < self.write_fraction
        hours = self._rng_misc.choice(24, size=n_requests, p=self._hour_weights)
        within = self._rng_misc.random(n_requests) * 3600.0
        ts = np.sort(hours * 3600.0 + within)
        sizes = self.catalog.sizes[objs]
        return [
            Request(
                client=int(c),
                obj=int(o),
                kind="write" if wr else "read",
                timestamp=float(t),
                size=int(s),
            )
            for c, o, wr, t, s in zip(clients, objs, writes, ts, sizes)
        ]

    def sample_trace(self, n_requests: int) -> Trace:
        """Sample a full :class:`Trace` with this generator's catalog."""
        return Trace(
            catalog=self.catalog,
            requests=self.sample_requests(n_requests),
            n_clients=self.n_clients,
        )

    # -- log emission -----------------------------------------------------

    def format_log_line(self, request: Request) -> str:
        """Render one request as an Apache common-log-format line."""
        host = f"client{request.client}.example.net"
        hh = int(request.timestamp // 3600) % 24
        mm = int(request.timestamp % 3600 // 60)
        ss = int(request.timestamp % 60)
        ts = f"01/May/1998:{hh:02d}:{mm:02d}:{ss:02d} +0000"
        method = "GET" if request.kind == "read" else "PUT"
        path = f"/english/images/{self.catalog.names[request.obj]}.html"
        nbytes = request.size * 1024  # 1 data unit = 1 kB in the paper
        return f'{host} - - [{ts}] "{method} {path} HTTP/1.0" 200 {nbytes}'

    def generate_log(self, n_requests: int) -> Iterator[str]:
        """Yield ``n_requests`` synthetic log lines."""
        for req in self.sample_requests(n_requests):
            yield self.format_log_line(req)


def parse_common_log_line(line: str) -> Optional[dict]:
    """Parse one common-log-format line into a field dict, or None.

    Returns ``{"host", "path", "method", "status", "bytes"}`` with
    ``bytes`` as an int (0 when the log records ``-``).  Malformed lines
    yield ``None`` so callers can count and skip them, as real log
    processing must.
    """
    m = _LOG_RE.match(line.strip())
    if not m:
        return None
    raw_bytes = m.group("bytes")
    return {
        "host": m.group("host"),
        "path": m.group("path"),
        "method": m.group("method"),
        "status": int(m.group("status")),
        "bytes": 0 if raw_bytes == "-" else int(raw_bytes),
    }


def parse_common_log_file(
    path,
    *,
    min_requests_per_object: int = 1,
    status_ok_only: bool = True,
) -> Trace:
    """Parse a common-log-format file (gzip-compressed if it ends in
    ``.gz`` — real WC'98 daily logs ship gzipped)."""
    import gzip
    from pathlib import Path

    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", errors="replace") as fh:
        return parse_common_log(
            fh,
            min_requests_per_object=min_requests_per_object,
            status_ok_only=status_ok_only,
        )


def parse_common_log(
    lines: Iterable[str],
    *,
    min_requests_per_object: int = 1,
    status_ok_only: bool = True,
) -> Trace:
    """Build a :class:`Trace` from common-log-format lines.

    Mirrors the paper's log-processing script: it keeps objects seen often
    enough (the paper kept objects present in *all* thirteen logs;
    ``min_requests_per_object`` is the single-log analogue), computes each
    object's average size from the response bytes, and maps hosts and
    paths to dense client/object ids.

    Parameters
    ----------
    status_ok_only:
        Drop non-2xx responses (cache misses / errors carry no payload).
    """
    records = []
    for line in lines:
        rec = parse_common_log_line(line)
        if rec is None:
            continue
        if status_ok_only and not (200 <= rec["status"] < 300):
            continue
        records.append(rec)
    if not records:
        raise ConfigurationError("no parseable log lines")

    counts: dict[str, int] = {}
    byte_sum: dict[str, int] = {}
    for rec in records:
        counts[rec["path"]] = counts.get(rec["path"], 0) + 1
        byte_sum[rec["path"]] = byte_sum.get(rec["path"], 0) + rec["bytes"]

    kept_paths = sorted(p for p, c in counts.items() if c >= min_requests_per_object)
    if not kept_paths:
        raise ConfigurationError(
            f"no object appears >= {min_requests_per_object} times"
        )
    obj_id = {p: k for k, p in enumerate(kept_paths)}
    # Average response size in kB-units, floored at 1.
    sizes = np.maximum(
        1,
        np.array(
            [round(byte_sum[p] / counts[p] / 1024.0) for p in kept_paths],
            dtype=np.int64,
        ),
    )
    catalog = ObjectCatalog(sizes=sizes, names=kept_paths)

    hosts = sorted({rec["host"] for rec in records})
    client_id = {h: i for i, h in enumerate(hosts)}

    requests = []
    for t, rec in enumerate(records):
        if rec["path"] not in obj_id:
            continue
        requests.append(
            Request(
                client=client_id[rec["host"]],
                obj=obj_id[rec["path"]],
                kind="write" if rec["method"] in _WRITE_METHODS else "read",
                timestamp=float(t),
                size=int(max(1, round(rec["bytes"] / 1024.0))),
            )
        )
    return Trace(catalog=catalog, requests=requests, n_clients=len(hosts))
