"""Zipf popularity utilities.

Web-object popularity is classically modelled as Zipf-like: the k-th most
popular object receives requests proportional to ``1 / k**alpha`` with
alpha near 0.7–1.0 for real traces (the WC'98 trace fits alpha ~ 0.85).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


def zipf_weights(n: int, alpha: float = 0.85) -> np.ndarray:
    """Normalized Zipf probability vector over ranks 1..n.

    ``weights[k] ∝ 1 / (k + 1)**alpha``; sums to 1.
    """
    n = check_positive_int(n, "n")
    check_positive(alpha, "alpha")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-alpha
    return w / w.sum()


def sample_zipf(
    n_items: int,
    n_samples: int,
    alpha: float = 0.85,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw ``n_samples`` item indices from a Zipf(alpha) law over
    ``n_items`` items (index 0 is the most popular)."""
    n_items = check_positive_int(n_items, "n_items")
    if n_samples < 0:
        raise ValueError("n_samples must be >= 0")
    rng = as_generator(seed)
    return rng.choice(n_items, size=n_samples, p=zipf_weights(n_items, alpha))


def empirical_zipf_alpha(counts: np.ndarray) -> float:
    """Least-squares Zipf exponent estimate from popularity counts.

    Fits ``log(count) = -alpha * log(rank) + b`` over the non-zero,
    descending-sorted counts.  Used by tests to verify the synthetic
    WorldCup generator produces Zipf-like popularity.
    """
    counts = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    counts = counts[counts > 0]
    if len(counts) < 2:
        raise ValueError("need at least two non-zero counts to fit an exponent")
    ranks = np.arange(1, len(counts) + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(counts), 1)
    return float(-slope)
