"""Shared hypothesis strategies for the property-based test suites."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.drp.instance import DRPInstance


@st.composite
def drp_instances(draw):
    """Random small DRP instances with a metric-like random cost matrix."""
    m = draw(st.integers(min_value=2, max_value=8))
    n = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    # Random symmetric cost with zero diagonal.
    raw = rng.uniform(1.0, 10.0, size=(m, m))
    cost = np.triu(raw, 1)
    cost = cost + cost.T
    reads = rng.integers(0, 20, size=(m, n))
    writes = rng.integers(0, 6, size=(m, n))
    sizes = rng.integers(1, 4, size=n)
    primaries = rng.integers(0, m, size=n)
    primary_load = np.zeros(m, dtype=np.int64)
    np.add.at(primary_load, primaries, sizes)
    headroom = rng.integers(0, 2 + int(sizes.sum()), size=m)
    return DRPInstance(
        cost=cost,
        reads=reads,
        writes=writes,
        sizes=sizes,
        capacities=primary_load + headroom,
        primaries=primaries,
    )
