"""Shared fixtures: deterministic instances at several scales."""

from __future__ import annotations

import numpy as np
import pytest

from repro.drp.instance import DRPInstance
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance


@pytest.fixture(scope="session")
def tiny_instance() -> DRPInstance:
    """16 servers x 60 objects, deterministic; fast enough for any test."""
    return paper_instance(
        ExperimentConfig(
            n_servers=16, n_objects=60, total_requests=8_000, seed=101, name="tiny"
        )
    )


@pytest.fixture(scope="session")
def read_heavy_instance() -> DRPInstance:
    """A 95%-read instance with generous capacity — the paper's headline
    regime, where every algorithm has plenty of profitable moves."""
    return paper_instance(
        ExperimentConfig(
            n_servers=20,
            n_objects=80,
            total_requests=15_000,
            rw_ratio=0.95,
            capacity_fraction=0.45,
            seed=7,
            name="read-heavy",
        )
    )


@pytest.fixture(scope="session")
def write_heavy_instance() -> DRPInstance:
    """A 25%-read instance: replication is rarely worthwhile."""
    return paper_instance(
        ExperimentConfig(
            n_servers=16,
            n_objects=60,
            total_requests=10_000,
            rw_ratio=0.25,
            seed=13,
            name="write-heavy",
        )
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(20260706)


def manual_instance(
    *,
    cost: np.ndarray,
    reads: np.ndarray,
    writes: np.ndarray,
    sizes: np.ndarray,
    capacities: np.ndarray,
    primaries: np.ndarray,
) -> DRPInstance:
    """Helper for hand-built instances in unit tests."""
    return DRPInstance(
        cost=cost,
        reads=reads,
        writes=writes,
        sizes=sizes,
        capacities=capacities,
        primaries=primaries,
        name="manual",
    )


@pytest.fixture(scope="session")
def line_instance() -> DRPInstance:
    """Three servers on a line 0-1-2 (unit edges), two objects.

    Hand-checkable: object 0 primary at server 0, object 1 primary at
    server 2; every server has room for one extra unit-size object.
    """
    cost = np.array(
        [
            [0.0, 1.0, 2.0],
            [1.0, 0.0, 1.0],
            [2.0, 1.0, 0.0],
        ]
    )
    reads = np.array([[0, 4], [2, 2], [6, 0]])
    writes = np.array([[1, 0], [0, 1], [0, 1]])
    return manual_instance(
        cost=cost,
        reads=reads,
        writes=writes,
        sizes=np.array([1, 1]),
        capacities=np.array([3, 2, 3]),
        primaries=np.array([0, 2]),
    )
