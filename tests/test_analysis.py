"""Tests for the analysis package."""

import pytest

from repro.analysis.compare import (
    PERFORMANCE_TIERS,
    classify_performance,
    rank_by_runtime,
    rank_by_savings,
)
from repro.analysis.metrics import summarize_results
from repro.core.agt_ram import run_agt_ram


class TestSummarize:
    def test_single_run(self, tiny_instance):
        res = run_agt_ram(tiny_instance)
        s = summarize_results([res])
        assert s.n_runs == 1
        assert s.savings_mean == pytest.approx(res.savings_percent)
        assert s.savings_std == 0.0

    def test_multiple_runs(self, tiny_instance):
        runs = [run_agt_ram(tiny_instance) for _ in range(3)]
        s = summarize_results(runs)
        assert s.n_runs == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_results([])

    def test_mixed_algorithms_rejected(self, tiny_instance):
        from repro.baselines.greedy import GreedyPlacer

        a = run_agt_ram(tiny_instance)
        b = GreedyPlacer().place(tiny_instance)
        with pytest.raises(ValueError):
            summarize_results([a, b])

    def test_str(self, tiny_instance):
        s = summarize_results([run_agt_ram(tiny_instance)])
        assert "AGT-RAM" in str(s)


class TestCompare:
    @pytest.fixture(scope="class")
    def results(self, read_heavy_instance):
        from repro.experiments.runner import run_algorithms

        return run_algorithms(
            read_heavy_instance,
            ("AGT-RAM", "Greedy", "GRA"),
            placer_kwargs={"GRA": {"population_size": 6, "generations": 3}},
        )

    def test_rank_by_savings(self, results):
        order = rank_by_savings(results)
        savings = [results[a].savings_percent for a in order]
        assert savings == sorted(savings, reverse=True)

    def test_rank_by_runtime(self, results):
        order = rank_by_runtime(results)
        times = [results[a].runtime_s for a in order]
        assert times == sorted(times)

    def test_classification_buckets(self, results):
        tiers = classify_performance(results)
        assert set(tiers) == set(results)
        best = rank_by_savings(results)[0]
        assert tiers[best] == "High"

    def test_classification_empty(self):
        assert classify_performance({}) == {}

    def test_paper_tiers_documented(self):
        assert PERFORMANCE_TIERS["AGT-RAM"] == "High"
        assert PERFORMANCE_TIERS["GRA"] == "Low"


class TestPlacementResult:
    def test_repr(self, tiny_instance):
        res = run_agt_ram(tiny_instance)
        text = repr(res)
        assert "AGT-RAM" in text and "savings" in text

    def test_replicas_property(self, tiny_instance):
        res = run_agt_ram(tiny_instance)
        assert res.replicas_allocated == res.state.total_replicas()
