"""Tests for per-object/per-server cost decomposition and attribution."""

import numpy as np
import pytest

from repro.analysis.breakdown import (
    concentration,
    object_attribution,
    server_attribution,
)
from repro.core.agt_ram import run_agt_ram
from repro.drp.cost import otc_by_object, otc_by_server, total_otc
from repro.drp.state import ReplicationState


class TestDecompositionExactness:
    def test_by_object_sums_to_total(self, tiny_instance, rng):
        st = ReplicationState.primaries_only(tiny_instance)
        for _ in range(15):
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if st.can_host(i, k):
                st.add_replica(i, k)
        assert otc_by_object(st).sum() == pytest.approx(total_otc(st))

    def test_by_server_sums_to_total(self, tiny_instance, rng):
        st = ReplicationState.primaries_only(tiny_instance)
        for _ in range(15):
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if st.can_host(i, k):
                st.add_replica(i, k)
        assert otc_by_server(st).sum() == pytest.approx(total_otc(st))

    def test_line_instance_by_object(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        per_obj = otc_by_object(st)
        # From the hand-computed OTC: obj0 = 14 (reads only), obj1 = 11.
        assert per_obj[0] == pytest.approx(14.0)
        assert per_obj[1] == pytest.approx(11.0)

    def test_line_instance_by_server(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        per_server = otc_by_server(st)
        # server0: reads obj1 4*2=8; server1: reads 2+2 + write obj1 to P: 1
        # server2: reads obj0 12 + write obj1 local 0.
        assert per_server[0] == pytest.approx(8.0)
        assert per_server[1] == pytest.approx(5.0)
        assert per_server[2] == pytest.approx(12.0)

    def test_nonnegative(self, read_heavy_instance):
        res = run_agt_ram(read_heavy_instance)
        assert (otc_by_object(res.state) >= -1e-9).all()
        assert (otc_by_server(res.state) >= -1e-9).all()


class TestAttribution:
    def test_savings_sum_matches(self, read_heavy_instance):
        baseline = ReplicationState.primaries_only(read_heavy_instance)
        res = run_agt_ram(read_heavy_instance)
        rows = object_attribution(baseline, res.state)
        total_saved = sum(r.saved for r in rows)
        assert total_saved == pytest.approx(
            total_otc(baseline) - res.otc, rel=1e-9
        )

    def test_sorted_descending(self, read_heavy_instance):
        baseline = ReplicationState.primaries_only(read_heavy_instance)
        res = run_agt_ram(read_heavy_instance)
        rows = server_attribution(baseline, res.state)
        saved = [r.saved for r in rows]
        assert saved == sorted(saved, reverse=True)

    def test_mismatched_instances_rejected(self, tiny_instance, read_heavy_instance):
        a = ReplicationState.primaries_only(tiny_instance)
        b = ReplicationState.primaries_only(read_heavy_instance)
        with pytest.raises(ValueError):
            object_attribution(a, b)

    def test_concentration(self, read_heavy_instance):
        baseline = ReplicationState.primaries_only(read_heavy_instance)
        res = run_agt_ram(read_heavy_instance)
        rows = object_attribution(baseline, res.state)
        n80 = concentration(rows, 0.8)
        # Zipf workloads concentrate savings in a minority of objects.
        assert 0 < n80 < 0.5 * len(rows)

    def test_concentration_nothing_saved(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        rows = object_attribution(st, st.copy())
        assert concentration(rows) == 0

    def test_concentration_validation(self):
        with pytest.raises(ValueError):
            concentration([], fraction=0.0)
