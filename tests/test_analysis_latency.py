"""Tests for the read-latency analysis."""

import numpy as np
import pytest

from repro.analysis.latency import latency_improvement, read_latency_report
from repro.core.agt_ram import run_agt_ram
from repro.drp.state import ReplicationState


class TestReadLatencyReport:
    def test_replication_cuts_latency(self, read_heavy_instance):
        before = ReplicationState.primaries_only(read_heavy_instance)
        res = run_agt_ram(read_heavy_instance)
        a = read_latency_report(before)
        b = read_latency_report(res.state)
        assert b.mean_s < a.mean_s
        assert b.local_fraction > a.local_fraction

    def test_percentiles_ordered(self, read_heavy_instance):
        rep = read_latency_report(
            ReplicationState.primaries_only(read_heavy_instance)
        )
        assert 0.0 <= rep.mean_s
        assert rep.p95_s <= rep.worst_s

    def test_line_instance_hand_values(self, line_instance):
        # Primaries only: reads at distances weighted by counts.
        # obj0 at P=0: r=[0,2,6] dist [0,1,2]; obj1 at P=2: r=[4,2,0]
        # dist [2,1,0].  Weighted mean distance = (2*1+6*2+4*2+2*1)/14.
        rep = read_latency_report(
            ReplicationState.primaries_only(line_instance),
            meters_per_cost_unit=1.0,
            speed_m_per_s=1.0,
        )
        assert rep.mean_s == pytest.approx((2 + 12 + 8 + 2) / 14)
        assert rep.local_fraction == pytest.approx(0.0)
        assert rep.worst_s == pytest.approx(2.0)

    def test_zero_reads(self, line_instance):
        from repro.drp.instance import DRPInstance

        inst = DRPInstance(
            cost=line_instance.cost,
            reads=np.zeros_like(line_instance.reads),
            writes=line_instance.writes,
            sizes=line_instance.sizes,
            capacities=line_instance.capacities,
            primaries=line_instance.primaries,
        )
        rep = read_latency_report(ReplicationState.primaries_only(inst))
        assert rep.mean_s == 0.0 and rep.local_fraction == 1.0

    def test_improvement_fraction(self, read_heavy_instance):
        before = ReplicationState.primaries_only(read_heavy_instance)
        res = run_agt_ram(read_heavy_instance)
        imp = latency_improvement(before, res.state)
        assert 0.0 < imp < 1.0

    def test_str(self, read_heavy_instance):
        rep = read_latency_report(
            ReplicationState.primaries_only(read_heavy_instance)
        )
        assert "ms" in str(rep)
