"""Tests for bootstrap statistics and paired comparisons."""

import numpy as np
import pytest

from repro.analysis.stats import BootstrapCI, bootstrap_ci, paired_comparison


class TestBootstrapCI:
    def test_contains_true_mean(self):
        rng = np.random.default_rng(0)
        x = rng.normal(10.0, 2.0, size=200)
        ci = bootstrap_ci(x, seed=1)
        assert ci.contains(10.0)
        assert ci.lo < ci.mean < ci.hi

    def test_tightens_with_samples(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(0, 1, 20), seed=2)
        large = bootstrap_ci(rng.normal(0, 1, 2000), seed=2)
        assert (large.hi - large.lo) < (small.hi - small.lo)

    def test_constant_sample(self):
        ci = bootstrap_ci([5.0, 5.0, 5.0], seed=3)
        assert ci.lo == ci.hi == ci.mean == 5.0

    def test_deterministic_with_seed(self):
        x = [1.0, 2.0, 3.0, 4.0]
        a, b = bootstrap_ci(x, seed=7), bootstrap_ci(x, seed=7)
        assert (a.lo, a.hi) == (b.lo, b.hi)

    @pytest.mark.parametrize(
        "kwargs", [{"confidence": 0.0}, {"confidence": 1.0}, {"n_resamples": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], **kwargs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_str(self):
        assert "@95%" in str(BootstrapCI(mean=1.0, lo=0.5, hi=1.5, confidence=0.95))


class TestPairedComparison:
    def test_clear_winner(self):
        a = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
        b = [5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        cmp = paired_comparison("A", a, "B", b, seed=0)
        assert cmp.wins_a == 6 and cmp.wins_b == 0
        assert cmp.a_significantly_better
        assert not cmp.b_significantly_better
        assert cmp.mean_diff == pytest.approx(5.0)

    def test_symmetric(self):
        a = [1.0, 2.0, 3.0]
        b = [3.0, 2.0, 1.0]
        cmp = paired_comparison("A", a, "B", b, seed=1)
        assert cmp.wins_a == cmp.wins_b == 1
        assert cmp.ties == 1
        assert not cmp.a_significantly_better

    def test_ties_counted(self):
        cmp = paired_comparison("A", [1.0, 1.0], "B", [1.0, 1.0], seed=2)
        assert cmp.ties == 2

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            paired_comparison("A", [1.0], "B", [1.0, 2.0])

    def test_on_real_replications(self):
        """Greedy beats AGT-RAM pairwise with a CI excluding zero."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.replication import replicate_comparison

        base = ExperimentConfig(
            n_servers=12,
            n_objects=40,
            total_requests=6_000,
            rw_ratio=0.95,
            capacity_fraction=0.45,
            seed=80,
            name="stats-test",
        )
        # Gather paired savings directly.
        from repro.experiments.instances import paper_instance
        from repro.experiments.runner import run_algorithms

        greedy_vals, agt_vals = [], []
        for r in range(5):
            inst = paper_instance(base.with_(seed=base.seed + r))
            res = run_algorithms(inst, ("Greedy", "AGT-RAM"))
            greedy_vals.append(res["Greedy"].savings_percent)
            agt_vals.append(res["AGT-RAM"].savings_percent)
        cmp = paired_comparison("Greedy", greedy_vals, "AGT-RAM", agt_vals, seed=3)
        assert cmp.wins_a >= 4
        assert cmp.mean_diff > 0
