"""Tests for convergence-trajectory analysis."""

import numpy as np
import pytest

from repro.analysis.trajectory import (
    marginal_gains,
    rounds_to_fraction,
    savings_trajectory,
)
from repro.core.agt_ram import run_agt_ram
from repro.errors import ReproError


@pytest.fixture(scope="module")
def audited(read_heavy_instance):
    return run_agt_ram(read_heavy_instance, record_audit=True)


class TestSavingsTrajectory:
    def test_starts_at_zero(self, read_heavy_instance, audited):
        traj = savings_trajectory(read_heavy_instance, audited)
        assert traj[0] == (0, 0.0)

    def test_ends_at_final_savings(self, read_heavy_instance, audited):
        traj = savings_trajectory(read_heavy_instance, audited)
        assert traj[-1][1] == pytest.approx(audited.savings_percent)
        assert traj[-1][0] == audited.rounds

    def test_monotone_increasing(self, read_heavy_instance, audited):
        traj = savings_trajectory(read_heavy_instance, audited)
        vals = [s for _, s in traj]
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))

    def test_requires_audit(self, read_heavy_instance):
        res = run_agt_ram(read_heavy_instance)
        with pytest.raises(ReproError):
            savings_trajectory(read_heavy_instance, res)


class TestRoundsToFraction:
    def test_front_loaded(self, read_heavy_instance, audited):
        # The paper: "immediate initial increase ... afterward near
        # constant performance" — 90% of savings in well under 90% of
        # the rounds.
        traj = savings_trajectory(read_heavy_instance, audited)
        r90 = rounds_to_fraction(traj, 0.9)
        assert r90 < 0.9 * audited.rounds

    def test_full_fraction(self, read_heavy_instance, audited):
        traj = savings_trajectory(read_heavy_instance, audited)
        assert rounds_to_fraction(traj, 1.0) <= audited.rounds

    def test_validation(self):
        with pytest.raises(ValueError):
            rounds_to_fraction([], 0.9)
        with pytest.raises(ValueError):
            rounds_to_fraction([(0, 0.0)], 1.5)

    def test_zero_savings(self):
        assert rounds_to_fraction([(0, 0.0), (1, 0.0)], 0.9) == 0


class TestMarginalGains:
    def test_diminishing_on_average(self, read_heavy_instance, audited):
        traj = savings_trajectory(read_heavy_instance, audited)
        gains = marginal_gains(traj)
        third = len(gains) // 3
        if third >= 2:
            assert gains[:third].mean() > gains[-third:].mean()

    def test_nonnegative(self, read_heavy_instance, audited):
        traj = savings_trajectory(read_heavy_instance, audited)
        assert (marginal_gains(traj) >= -1e-9).all()
