"""Top-level API surface and error-hierarchy tests."""

import inspect

import pytest

import repro
from repro import errors


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "subpackage",
        ["topology", "workload", "drp", "core", "baselines", "runtime",
         "experiments", "analysis", "serving", "utils"],
    )
    def test_subpackage_all_resolves(self, subpackage):
        import importlib

        mod = importlib.import_module(f"repro.{subpackage}")
        for name in mod.__all__:
            assert hasattr(mod, name), f"repro.{subpackage}.{name} missing"

    def test_quickstart_docstring_flow(self):
        # The module docstring promises this exact flow works.
        from repro import ExperimentConfig, paper_instance, run_agt_ram

        instance = paper_instance(
            ExperimentConfig(n_servers=10, n_objects=30, total_requests=3_000)
        )
        assert run_agt_ram(instance).savings_percent >= 0.0

    def test_public_items_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"undocumented public items: {undocumented}"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                inspect.isclass(obj)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_single_catch_covers_library(self):
        from repro import ExperimentConfig

        with pytest.raises(errors.ReproError):
            ExperimentConfig(n_servers=-1)

    def test_capacity_error_catchable_specifically(self, line_instance):
        from repro.drp.state import ReplicationState
        from repro.drp.instance import DRPInstance
        import numpy as np

        inst = DRPInstance(
            cost=line_instance.cost,
            reads=line_instance.reads,
            writes=line_instance.writes,
            sizes=np.array([1, 9]),
            capacities=np.array([3, 2, 9]),
            primaries=np.array([0, 2]),
        )
        st = ReplicationState.primaries_only(inst)
        with pytest.raises(errors.CapacityError):
            st.add_replica(1, 1)


class TestResultRecord:
    def test_repr_fields(self, tiny_instance):
        from repro import run_agt_ram

        r = repr(run_agt_ram(tiny_instance))
        for needle in ("AGT-RAM", "otc=", "savings=", "replicas="):
            assert needle in r

    def test_extra_defaults_to_dict(self, tiny_instance):
        from repro.baselines.greedy import GreedyPlacer

        res = GreedyPlacer().place(tiny_instance)
        assert isinstance(res.extra, dict)
