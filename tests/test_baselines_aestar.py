"""Tests for the Aε-Star branch-and-bound placer."""

import numpy as np
import pytest

from repro.baselines.aestar import AEStarPlacer
from repro.drp.cost import primary_only_otc
from repro.drp.feasibility import check_state


class TestAEStar:
    def test_reduces_otc(self, read_heavy_instance):
        res = AEStarPlacer(node_budget=40).place(read_heavy_instance)
        assert res.otc < primary_only_otc(read_heavy_instance)

    def test_feasible(self, read_heavy_instance):
        check_state(AEStarPlacer(node_budget=40).place(read_heavy_instance).state)

    def test_line_instance_finds_best_first_move(self, line_instance):
        res = AEStarPlacer(node_budget=10).place(line_instance)
        assert res.state.x[2, 0]

    def test_budget_bounds_expansions(self, read_heavy_instance):
        res = AEStarPlacer(node_budget=15).place(read_heavy_instance)
        assert res.extra["expansions"] <= 15

    def test_deterministic(self, tiny_instance):
        a = AEStarPlacer(node_budget=30).place(tiny_instance)
        b = AEStarPlacer(node_budget=30).place(tiny_instance)
        assert np.array_equal(a.state.x, b.state.x)

    def test_quality_near_greedy(self, read_heavy_instance):
        from repro.baselines.greedy import GreedyPlacer

        ae = AEStarPlacer(node_budget=60).place(read_heavy_instance)
        greedy = GreedyPlacer().place(read_heavy_instance)
        # Within 25% of greedy's savings (the paper's "Medium" tier).
        assert ae.savings_percent > 0.75 * greedy.savings_percent

    def test_larger_budget_no_worse(self, tiny_instance):
        small = AEStarPlacer(node_budget=5).place(tiny_instance)
        large = AEStarPlacer(node_budget=80).place(tiny_instance)
        assert large.otc <= small.otc * 1.05  # search is heuristic; allow slack

    def test_no_gain_instance_terminates(self, write_heavy_instance):
        res = AEStarPlacer(node_budget=20).place(write_heavy_instance)
        baseline = primary_only_otc(write_heavy_instance)
        assert res.otc <= baseline or res.otc == pytest.approx(baseline)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": -0.1},
            {"branching": 0},
            {"node_budget": 0},
            {"candidate_pool": 1, "branching": 3},
        ],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            AEStarPlacer(**kwargs)
