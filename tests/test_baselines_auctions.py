"""Tests for the Dutch and English auction placers."""

import numpy as np
import pytest

from repro.baselines.auctions import AuctionContext
from repro.baselines.dutch import DutchAuctionPlacer
from repro.baselines.english import EnglishAuctionPlacer
from repro.drp.cost import primary_only_otc
from repro.drp.feasibility import check_state


class TestAuctionContext:
    def test_fresh(self, line_instance):
        ctx = AuctionContext.fresh(line_instance)
        assert ctx.sales == 0
        assert ctx.max_value() == pytest.approx(10.0)

    def test_sell_updates_everything(self, line_instance):
        ctx = AuctionContext.fresh(line_instance)
        ctx.sell(2, 0, price=4.0)
        assert ctx.state.x[2, 0]
        assert ctx.payments[2] == 4.0
        assert ctx.sales == 1
        # Engine refreshed: server 2's value for object 0 is gone.
        assert not np.isfinite(ctx.engine.matrix[2, 0])


@pytest.mark.parametrize(
    "placer_cls,kwargs",
    [
        (DutchAuctionPlacer, {}),
        (EnglishAuctionPlacer, {}),
    ],
)
class TestAuctionPlacers:
    def test_feasible(self, placer_cls, kwargs, read_heavy_instance):
        res = placer_cls(seed=0, **kwargs).place(read_heavy_instance)
        check_state(res.state)

    def test_reduces_otc(self, placer_cls, kwargs, read_heavy_instance):
        res = placer_cls(seed=0, **kwargs).place(read_heavy_instance)
        assert res.otc < primary_only_otc(read_heavy_instance)

    def test_payments_recorded(self, placer_cls, kwargs, read_heavy_instance):
        res = placer_cls(seed=0, **kwargs).place(read_heavy_instance)
        assert (res.extra["payments"] >= 0).all()
        assert res.extra["sales"] == res.replicas_allocated

    def test_no_opportunity_instance(self, placer_cls, kwargs):
        # An instance where no replication is ever beneficial: all costs
        # zero (reading from the primary is free).
        from repro.drp.instance import DRPInstance

        inst = DRPInstance(
            cost=np.zeros((3, 3)),
            reads=np.ones((3, 2), dtype=int),
            writes=np.zeros((3, 2), dtype=int),
            sizes=np.array([1, 1]),
            capacities=np.array([5, 5, 5]),
            primaries=np.array([0, 1]),
        )
        res = placer_cls(seed=0, **kwargs).place(inst)
        assert res.replicas_allocated == 0

    def test_deterministic_with_seed(self, placer_cls, kwargs, tiny_instance):
        a = placer_cls(seed=9, **kwargs).place(tiny_instance)
        b = placer_cls(seed=9, **kwargs).place(tiny_instance)
        assert np.array_equal(a.state.x, b.state.x)


class TestDutchSpecifics:
    def test_trails_agt_ram(self, read_heavy_instance):
        from repro.core.agt_ram import run_agt_ram

        da = DutchAuctionPlacer(seed=0).place(read_heavy_instance)
        agt = run_agt_ram(read_heavy_instance)
        # DA shares AGT-RAM's local valuations but loses to clock
        # granularity and random within-level service order.
        assert da.savings_percent <= agt.savings_percent + 1e-9

    def test_floor_limits_allocations(self, read_heavy_instance):
        high_floor = DutchAuctionPlacer(floor_fraction=0.5, seed=0).place(
            read_heavy_instance
        )
        low_floor = DutchAuctionPlacer(floor_fraction=0.001, seed=0).place(
            read_heavy_instance
        )
        assert high_floor.replicas_allocated < low_floor.replicas_allocated

    @pytest.mark.parametrize("kwargs", [{"decrement": 0.0}, {"floor_fraction": 1.0}])
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            DutchAuctionPlacer(**kwargs)


class TestEnglishSpecifics:
    def test_coarse_increment_hurts(self, read_heavy_instance):
        # Stochastic tie-breaks make single runs noisy; compare means.
        def mean_savings(increment: float) -> float:
            runs = [
                EnglishAuctionPlacer(increment_fraction=increment, seed=s).place(
                    read_heavy_instance
                )
                for s in range(4)
            ]
            return sum(r.savings_percent for r in runs) / len(runs)

        assert mean_savings(0.4) < mean_savings(0.01)

    def test_max_sales_cap(self, read_heavy_instance):
        res = EnglishAuctionPlacer(max_sales=4, seed=0).place(read_heavy_instance)
        assert res.replicas_allocated <= 4

    def test_winner_never_pays_above_value(self, read_heavy_instance):
        # Per-auction: the clock stops at/below the winner's valuation, so
        # total payments <= total (true) value captured; bounded by total
        # OTC reduction of the local view, which is itself >= 0.
        res = EnglishAuctionPlacer(seed=0).place(read_heavy_instance)
        assert res.extra["payments"].sum() >= 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"increment_fraction": 0.0}, {"reserve_fraction": 1.0}, {"max_sales": -1}],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            EnglishAuctionPlacer(**kwargs)


class TestRegistry:
    def test_make_placer_all_labels(self):
        from repro.baselines.base import make_placer

        for name in ("AGT-RAM", "Greedy", "GRA", "Ae-Star", "DA", "EA", "Random"):
            placer = make_placer(name)
            assert placer.name == name

    def test_unknown_label(self):
        from repro.baselines.base import make_placer
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_placer("SimulatedAnnealing")

    def test_kwargs_forwarded(self, tiny_instance):
        from repro.baselines.base import make_placer

        placer = make_placer("Greedy", max_steps=2)
        assert placer.place(tiny_instance).replicas_allocated == 2
