"""Tests for the genetic replication algorithm."""

import numpy as np
import pytest

from repro.baselines.gra import GRAPlacer
from repro.drp.cost import primary_only_otc
from repro.drp.feasibility import check_state


def small_gra(**kw):
    defaults = dict(population_size=8, generations=6, seed=0)
    defaults.update(kw)
    return GRAPlacer(**defaults)


class TestGRA:
    def test_feasible(self, tiny_instance):
        check_state(small_gra().place(tiny_instance).state)

    def test_improves_on_primaries(self, read_heavy_instance):
        res = small_gra(generations=10).place(read_heavy_instance)
        assert res.otc < primary_only_otc(read_heavy_instance)

    def test_deterministic_with_seed(self, tiny_instance):
        a = small_gra(seed=3).place(tiny_instance)
        b = small_gra(seed=3).place(tiny_instance)
        assert np.array_equal(a.state.x, b.state.x)

    def test_different_seeds_differ(self, tiny_instance):
        a = small_gra(seed=1).place(tiny_instance)
        b = small_gra(seed=2).place(tiny_instance)
        # Stochastic search: schemes should differ (not a hard guarantee,
        # but overwhelmingly likely on this instance).
        assert not np.array_equal(a.state.x, b.state.x)

    def test_more_generations_no_worse(self, tiny_instance):
        short = small_gra(generations=2, seed=5).place(tiny_instance)
        long_ = small_gra(generations=20, seed=5).place(tiny_instance)
        # Elitism makes best-so-far monotone in generations.
        assert long_.otc <= short.otc + 1e-9

    def test_trails_greedy(self, read_heavy_instance):
        from repro.baselines.greedy import GreedyPlacer

        gra = small_gra().place(read_heavy_instance)
        greedy = GreedyPlacer().place(read_heavy_instance)
        assert gra.savings_percent < greedy.savings_percent

    def test_rounds_is_generations(self, tiny_instance):
        assert small_gra(generations=4).place(tiny_instance).rounds == 4

    def test_evaluation_cache_reported(self, tiny_instance):
        res = small_gra().place(tiny_instance)
        assert res.extra["evaluations"] > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"generations": 0},
            {"crossover_rate": 1.5},
            {"mutation_flips": -1},
            {"elitism": 8, "population_size": 8},
            {"tournament": 0},
        ],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            GRAPlacer(**kwargs)


class TestGRAOperators:
    def test_repair_restores_feasibility(self, tiny_instance, rng):
        placer = small_gra()
        x = placer._random_chromosome(tiny_instance, rng, density=0.5)
        # Overload: flip on everything for one server.
        x[3, :] = True
        x[tiny_instance.primaries, np.arange(tiny_instance.n_objects)] = True
        placer._repair(tiny_instance, x, rng)
        used = x @ tiny_instance.sizes
        assert (used <= tiny_instance.capacities).all()
        assert x[tiny_instance.primaries, np.arange(tiny_instance.n_objects)].all()

    def test_crossover_columns_from_parents(self, tiny_instance, rng):
        placer = small_gra()
        a = placer._random_chromosome(tiny_instance, rng, 0.3)
        b = placer._random_chromosome(tiny_instance, rng, 0.3)
        child = placer._crossover(a, b, rng)
        for k in range(tiny_instance.n_objects):
            col = child[:, k]
            assert np.array_equal(col, a[:, k]) or np.array_equal(col, b[:, k])

    def test_mutation_never_flips_primary(self, tiny_instance, rng):
        placer = small_gra(mutation_flips=200.0)
        x = np.zeros((tiny_instance.n_servers, tiny_instance.n_objects), dtype=bool)
        cols = np.arange(tiny_instance.n_objects)
        x[tiny_instance.primaries, cols] = True
        placer._mutate(tiny_instance, x, rng)
        assert x[tiny_instance.primaries, cols].all()

    def test_random_chromosome_feasible(self, tiny_instance, rng):
        placer = small_gra()
        x = placer._random_chromosome(tiny_instance, rng, density=0.8)
        used = x @ tiny_instance.sizes
        assert (used <= tiny_instance.capacities).all()
