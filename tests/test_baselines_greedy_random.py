"""Tests for the Greedy and Random placers."""

import numpy as np
import pytest

from repro.baselines.greedy import GreedyPlacer
from repro.baselines.random_placement import RandomPlacer
from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.feasibility import check_state
from repro.drp.global_engine import GlobalBenefitEngine
from repro.drp.state import ReplicationState


class TestGreedy:
    def test_reduces_otc(self, read_heavy_instance):
        res = GreedyPlacer().place(read_heavy_instance)
        assert res.otc < primary_only_otc(read_heavy_instance)

    def test_feasible(self, read_heavy_instance):
        check_state(GreedyPlacer().place(read_heavy_instance).state)

    def test_line_instance_optimal_first_move(self, line_instance):
        res = GreedyPlacer(max_steps=1).place(line_instance)
        # The hand-computed best move is (server 2, object 0), gain 10.
        assert res.state.x[2, 0]
        assert res.otc == pytest.approx(25.0 - 10.0)

    def test_terminates_when_no_gain(self, write_heavy_instance):
        res = GreedyPlacer().place(write_heavy_instance)
        # At termination no feasible cell has positive global benefit.
        engine = GlobalBenefitEngine(write_heavy_instance, res.state)
        _, _, g = engine.best_cell()
        assert not np.isfinite(g) or g <= 0.0

    def test_deterministic(self, tiny_instance):
        a = GreedyPlacer().place(tiny_instance)
        b = GreedyPlacer().place(tiny_instance)
        assert np.array_equal(a.state.x, b.state.x)

    def test_max_steps(self, read_heavy_instance):
        res = GreedyPlacer(max_steps=3).place(read_heavy_instance)
        assert res.replicas_allocated == 3

    def test_every_step_decreased_otc(self, tiny_instance):
        # Greedy's final OTC must equal baseline minus the sum of chosen
        # (all positive) gains; equivalently it strictly improves.
        res = GreedyPlacer().place(tiny_instance)
        assert res.otc <= primary_only_otc(tiny_instance)

    def test_beats_local_agt_ram(self, read_heavy_instance):
        # The fully-informed oracle can never do worse than the
        # semi-distributed mechanism on the same instance.
        from repro.core.agt_ram import run_agt_ram

        greedy = GreedyPlacer().place(read_heavy_instance)
        agt = run_agt_ram(read_heavy_instance)
        assert greedy.savings_percent >= agt.savings_percent - 1e-9

    def test_bad_max_steps(self):
        with pytest.raises(ValueError):
            GreedyPlacer(max_steps=-1)


class TestRandomPlacer:
    def test_feasible(self, tiny_instance):
        check_state(RandomPlacer(seed=0).place(tiny_instance).state)

    def test_fill_fraction_zero(self, tiny_instance):
        res = RandomPlacer(fill_fraction=0.0, seed=0).place(tiny_instance)
        assert res.replicas_allocated == 0

    def test_fills_most_capacity(self, tiny_instance):
        res = RandomPlacer(fill_fraction=0.9, seed=1).place(tiny_instance)
        used = res.state.used - tiny_instance.primary_load
        assert used.sum() >= 0.5 * tiny_instance.replica_headroom().sum()

    def test_deterministic_with_seed(self, tiny_instance):
        a = RandomPlacer(seed=5).place(tiny_instance)
        b = RandomPlacer(seed=5).place(tiny_instance)
        assert np.array_equal(a.state.x, b.state.x)

    def test_quality_floor(self, read_heavy_instance):
        # Sanity: greedy must clearly beat random placement.
        from repro.baselines.greedy import GreedyPlacer

        rnd = RandomPlacer(seed=2).place(read_heavy_instance)
        greedy = GreedyPlacer().place(read_heavy_instance)
        assert greedy.savings_percent > rnd.savings_percent

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            RandomPlacer(fill_fraction=1.5)
