"""Tests for the exact optimal solver (the evaluation's anchor)."""

import numpy as np
import pytest

from repro.baselines.greedy import GreedyPlacer
from repro.baselines.optimal import OptimalPlacer, brute_force_otc
from repro.core.agt_ram import run_agt_ram
from repro.drp.feasibility import check_state
from repro.drp.instance import build_instance
from repro.errors import ConvergenceError
from repro.topology import random_graph
from repro.workload.synthetic import synthesize_workload


def tiny_drp(seed: int, *, capacity_fraction: float = 1.0, jitter: float = 0.0,
             m: int = 5, n: int = 4, rw: float = 0.85):
    topo = random_graph(m, 0.5, seed=seed)
    w = synthesize_workload(m, n, total_requests=600, rw_ratio=rw, seed=seed)
    return build_instance(
        topo, w, capacity_fraction=capacity_fraction, capacity_jitter=jitter,
        seed=seed,
    )


class TestOptimalCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force_unconstrained(self, seed):
        inst = tiny_drp(seed)
        opt = OptimalPlacer().place(inst)
        assert opt.otc == pytest.approx(brute_force_otc(inst), rel=1e-9)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_dominates_all_heuristics(self, seed):
        inst = tiny_drp(seed, capacity_fraction=0.3, jitter=0.5)
        opt = OptimalPlacer().place(inst)
        greedy = GreedyPlacer().place(inst)
        agt = run_agt_ram(inst)
        assert opt.otc <= greedy.otc + 1e-6
        assert opt.otc <= agt.otc + 1e-6

    def test_state_feasible(self):
        inst = tiny_drp(20, capacity_fraction=0.3, jitter=0.5)
        check_state(OptimalPlacer().place(inst).state)

    def test_line_instance_exact(self, line_instance):
        opt = OptimalPlacer().place(line_instance)
        # Hand analysis: replicating object 0 at servers 1 and 2 and
        # object 1 at server 1 is feasible; the solver must find a
        # scheme at least as good as greedy's.
        greedy = GreedyPlacer().place(line_instance)
        assert opt.otc <= greedy.otc + 1e-9

    def test_node_budget_enforced(self):
        inst = tiny_drp(30, m=6, n=6)
        with pytest.raises(ConvergenceError):
            OptimalPlacer(max_nodes=10).place(inst)

    def test_deterministic(self):
        inst = tiny_drp(40)
        a = OptimalPlacer().place(inst)
        b = OptimalPlacer().place(inst)
        assert np.array_equal(a.state.x, b.state.x)

    def test_registry(self):
        from repro.baselines.base import make_placer

        assert make_placer("Optimal").name == "Optimal"


class TestBruteForce:
    def test_rejects_binding_capacity(self):
        inst = tiny_drp(50, capacity_fraction=0.1, jitter=0.5)
        with pytest.raises(ValueError):
            brute_force_otc(inst)

    def test_never_above_primary_only(self):
        from repro.drp.cost import primary_only_otc

        inst = tiny_drp(51)
        assert brute_force_otc(inst) <= primary_only_otc(inst) + 1e-9
