"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main

FAST = ["--servers", "12", "--objects", "40", "--requests", "4000", "--seed", "3"]


class TestGenerate:
    def test_writes_instance(self, tmp_path, capsys):
        out = tmp_path / "inst.npz"
        rc = main(["generate", *FAST, "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_roundtrip_through_run(self, tmp_path, capsys):
        out = tmp_path / "inst.npz"
        main(["generate", *FAST, "-o", str(out)])
        rc = main(["run", "--instance", str(out), "-a", "AGT-RAM"])
        assert rc == 0
        assert "AGT-RAM" in capsys.readouterr().out


class TestRun:
    def test_default_algorithm(self, capsys):
        rc = main(["run", *FAST])
        assert rc == 0
        out = capsys.readouterr().out
        assert "savings" in out

    def test_save_result(self, tmp_path, capsys):
        rc = main(["run", *FAST, "-o", str(tmp_path / "res")])
        assert rc == 0
        assert (tmp_path / "res.json").exists()
        assert (tmp_path / "res.npz").exists()

    @pytest.mark.parametrize("alg", ["Greedy", "DA"])
    def test_other_algorithms(self, alg, capsys):
        rc = main(["run", *FAST, "-a", alg])
        assert rc == 0
        assert alg in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["naive", "vectorized"])
    def test_engine_flag_reported(self, engine, capsys):
        rc = main(["run", *FAST, "-a", "AGT-RAM", "--engine", engine])
        assert rc == 0
        assert f"engine {engine}" in capsys.readouterr().out

    def test_engines_agree_on_otc(self, capsys):
        main(["run", *FAST, "--engine", "naive"])
        naive_out = capsys.readouterr().out
        main(["run", *FAST, "--engine", "vectorized"])
        vec_out = capsys.readouterr().out
        # Identical OTC / savings / replicas; only runtime+engine differ.
        assert naive_out.split("  runtime")[0] == vec_out.split("  runtime")[0]

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", *FAST, "--engine", "turbo"])


class TestAuditCompareEngines:
    def test_identity_check_passes(self, capsys):
        rc = main(["audit", "--compare-engines", "--scale", "tiny",
                   "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "identity : OK" in out
        assert "audit    : OK" in out
        assert "speedup" in out

    def test_impossible_speedup_gate_fails(self, capsys):
        rc = main(["audit", "--compare-engines", "--scale", "tiny",
                   "--repeats", "1", "--min-speedup", "1000000",
                   "--retries", "0"])
        assert rc == 1
        assert "below required" in capsys.readouterr().err

    def test_speedup_gate_retries_before_failing(self, capsys):
        rc = main(["audit", "--compare-engines", "--scale", "tiny",
                   "--repeats", "1", "--min-speedup", "1000000",
                   "--retries", "2"])
        assert rc == 1
        assert capsys.readouterr().err.count("re-measuring") == 2

    def test_no_log_and_no_compare_is_usage_error(self, capsys):
        rc = main(["audit"])
        assert rc == 2
        assert "provide an event log" in capsys.readouterr().err


class TestCompare:
    def test_subset(self, capsys):
        rc = main(["compare", *FAST, "--algorithms", "AGT-RAM", "Greedy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "AGT-RAM" in out and "Greedy" in out


class TestSweep:
    def test_capacity_sweep(self, capsys):
        rc = main(
            ["sweep", *FAST, "--param", "capacity", "--values", "0.1", "0.3",
             "--algorithms", "AGT-RAM", "--no-chart"]
        )
        assert rc == 0
        assert "capacity" in capsys.readouterr().out

    def test_rw_sweep_with_chart(self, capsys):
        rc = main(
            ["sweep", *FAST, "--param", "rw", "--values", "0.6", "0.95",
             "--algorithms", "AGT-RAM", "Greedy"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "o = AGT-RAM" in out  # chart legend


class TestAxioms:
    def test_all_pass(self, capsys):
        rc = main(["axioms", *FAST])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 6


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "-a", "Magic"])


class TestReproduce:
    def test_fig3_only(self, capsys):
        rc = main(["reproduce", "--scale", "tiny", "--targets", "fig3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "AGT-RAM" in out

    def test_tables(self, capsys):
        rc = main(["reproduce", "--scale", "tiny", "--targets", "table2"])
        assert rc == 0
        assert "Table 2" in capsys.readouterr().out

    def test_bad_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "--targets", "fig9"])


class TestSweepCsv:
    def test_csv_written(self, tmp_path, capsys):
        out = tmp_path / "rows.csv"
        rc = main(
            ["sweep", *FAST, "--param", "capacity", "--values", "0.2",
             "--algorithms", "AGT-RAM", "--no-chart", "--csv", str(out)]
        )
        assert rc == 0
        assert out.exists()
        text = out.read_text()
        assert "AGT-RAM" in text and "savings_percent" in text


class TestChaos:
    def test_campaign_writes_artifacts_and_passes(self, tmp_path, capsys):
        import json

        report = tmp_path / "report.json"
        faults = tmp_path / "faults.json"
        events = tmp_path / "events.jsonl"
        rc = main(
            ["chaos", *FAST, "--fault-seed", "5",
             "--central-crash-rate", "0.03",
             "--max-degradation", "1.5",
             "--report", str(report), "--fault-log", str(faults),
             "--events", str(events)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos campaign" in out and "audit:    PASS" in out
        doc = json.loads(report.read_text())
        assert doc["kind"] == "repro-chaos"
        assert doc["feasible"] and doc["audit_ok"]
        assert doc["otc_degradation"] >= 0
        assert doc["chaos"]["messages"] >= doc["baseline"]["messages"]
        plan = json.loads(faults.read_text())
        assert plan["plan"]["seed"] == 5
        # The recorded log passes the offline audit CLI too.
        assert main(["audit", str(events)]) == 0

    def test_same_fault_seed_same_event_log(self, tmp_path, capsys):
        logs = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            rc = main(
                ["chaos", *FAST, "--fault-seed", "9", "--events", str(path)]
            )
            assert rc == 0
            logs.append(path.read_bytes())
        capsys.readouterr()
        assert logs[0] == logs[1]

    def test_degradation_gate_fails(self, tmp_path, capsys):
        # An impossible bound (chaos OTC can never be 0.5x the clean
        # OTC on the same instance) must trip the gate.
        rc = main(["chaos", *FAST, "--max-degradation", "0.5"])
        capsys.readouterr()
        assert rc == 1


class TestAdversary:
    def test_campaign_writes_artifacts_and_passes(self, tmp_path, capsys):
        import json

        report = tmp_path / "report.json"
        events = tmp_path / "events.jsonl"
        rc = main(
            ["adversary", *FAST, "--adv-seed", "3",
             "--fraction", "0.25", "--fraction", "0.4",
             "--min-recall", "0.95", "--max-degradation", "1.5",
             "--report", str(report), "--events", str(events)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "adversary campaign" in out and "verdict: PASS" in out
        doc = json.loads(report.read_text())
        assert doc["kind"] == "repro-adversary"
        assert doc["ok"] and not doc["failures"]
        assert len(doc["runs"]) == 2
        for run in doc["runs"]:
            assert run["feasible"] and run["audit_ok"]
            assert run["recall"] >= 0.95
            assert run["false_quarantines"] == []
            assert run["injected"] > 0
        # The recorded log passes the offline audit CLI too.
        assert main(["audit", str(events)]) == 0

    def test_same_adv_seed_same_report(self, tmp_path, capsys):
        docs = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            rc = main(
                ["adversary", *FAST, "--adv-seed", "7",
                 "--fraction", "0.3", "--report", str(path)]
            )
            assert rc == 0
            docs.append(path.read_bytes())
        capsys.readouterr()
        assert docs[0] == docs[1]

    def test_impossible_recall_gate_fails(self, tmp_path, capsys):
        rc = main(
            ["adversary", *FAST, "--fraction", "0.3", "--min-recall", "1.1"]
        )
        capsys.readouterr()
        assert rc == 1

    def test_unknown_behavior_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["adversary", *FAST, "--fraction", "0.3",
                 "--behaviors", "bribe"]
            )
        capsys.readouterr()

SERVE_FAST = [
    "--servers", "8", "--objects", "24", "--requests", "3000",
    "--capacity", "0.5", "--seed", "3", "--serve-requests", "1500",
]


class TestServe:
    def test_campaign_writes_artifacts_and_passes(self, tmp_path, capsys):
        import json

        report = tmp_path / "report.json"
        events = tmp_path / "events.jsonl"
        rc = main(
            ["serve", *SERVE_FAST, "--workload", "worldcup",
             "--crash-rate", "0.05", "--straggler-rate", "0.02",
             "--fault-seed", "5", "--min-availability", "0.98",
             "--report", str(report), "--events", str(events)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving campaign" in out and "verdict: PASS" in out
        doc = json.loads(report.read_text())
        assert doc["kind"] == "repro-serve"
        assert doc["ok"] and not doc["failures"]
        assert doc["serving_audit_ok"] and doc["audit_ok"]
        assert doc["serving"]["availability"] >= 0.98
        assert doc["serving"]["served"] + doc["serving"]["failed"] == 1500
        # The recorded log passes the offline audit CLI too.
        assert main(["audit", str(events)]) == 0

    def test_same_seed_byte_identical_artifacts(self, tmp_path, capsys):
        artifacts = []
        for name in ("a", "b"):
            report = tmp_path / f"{name}.json"
            events = tmp_path / f"{name}.jsonl"
            rc = main(
                ["serve", *SERVE_FAST, "--crash-rate", "0.05",
                 "--fault-seed", "7",
                 "--report", str(report), "--events", str(events)]
            )
            assert rc == 0
            artifacts.append(report.read_bytes() + events.read_bytes())
        capsys.readouterr()
        assert artifacts[0] == artifacts[1]

    def test_drift_workload_reauctions(self, tmp_path, capsys):
        import json

        report = tmp_path / "report.json"
        rc = main(
            ["serve", *SERVE_FAST, "--workload", "drift",
             "--drift-window", "400", "--report", str(report)]
        )
        assert rc == 0
        capsys.readouterr()
        doc = json.loads(report.read_text())
        assert doc["serving"]["reauctions"] >= 1
        assert doc["serving_audit_ok"] and doc["audit_ok"]

    def test_availability_gate_fails(self, capsys):
        rc = main(["serve", *SERVE_FAST, "--min-availability", "1.01"])
        out = capsys.readouterr()
        assert rc == 1
        assert "verdict: FAIL" in out.out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", *SERVE_FAST, "--workload", "nope"])
        capsys.readouterr()


class TestShard:
    def test_campaign_writes_artifacts_and_passes(self, tmp_path, capsys):
        import json

        report = tmp_path / "report.json"
        events = tmp_path / "events.jsonl"
        plans = tmp_path / "plans.json"
        rc = main(
            ["shard", *FAST, "--regions", "8", "--shard-seed", "2007",
             "--partition-seed", "2007", "--crash-rate", "0.01",
             "--check-null", "--max-degradation", "1.0",
             "--report", str(report), "--events", str(events),
             "--plan-out", str(plans)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "shard campaign" in out and "verdict: PASS" in out
        doc = json.loads(report.read_text())
        assert doc["kind"] == "repro-shard"
        assert doc["ok"] and not doc["failures"]
        # The headline claim: the sharded protocol at least halves the
        # single-central message traffic while healthy.
        assert doc["message_reduction"] >= 2.0
        for run in doc["runs"]:
            assert run["feasible"] and run["audit_ok"]
            assert run["otc_degradation"] >= 0.0
        assert json.loads(plans.read_text())
        # The recorded region-tagged log passes the sharded audit CLI.
        assert main(["audit", "--sharded", str(events)]) == 0

    def test_same_seeds_byte_identical_artifacts(self, tmp_path, capsys):
        artifacts = []
        for name in ("a", "b"):
            report = tmp_path / f"{name}.json"
            events = tmp_path / f"{name}.jsonl"
            rc = main(
                ["shard", *FAST, "--shard-seed", "11",
                 "--partition-seed", "13",
                 "--report", str(report), "--events", str(events)]
            )
            assert rc == 0
            artifacts.append(report.read_bytes() + events.read_bytes())
        capsys.readouterr()
        assert artifacts[0] == artifacts[1]

    def test_plan_file_round_trip(self, tmp_path, capsys):
        import json

        plans = tmp_path / "plans.json"
        rc = main(
            ["shard", *FAST, "--fraction", "0.5", "--plan-out", str(plans)]
        )
        assert rc == 0
        stored = json.loads(plans.read_text())
        plan_file = tmp_path / "one.json"
        plan_file.write_text(json.dumps(next(iter(stored.values()))))
        rc = main(["shard", *FAST, "--plan", str(plan_file)])
        capsys.readouterr()
        assert rc == 0

    def test_message_reduction_gate_fails(self, capsys):
        # No protocol change can cut traffic 100x on this instance.
        rc = main(["shard", *FAST, "--min-message-reduction", "100"])
        out = capsys.readouterr()
        assert rc == 1
        assert "verdict: FAIL" in out.out

class TestResilience:
    def test_smoke_scenario_passes_and_writes_report(self, tmp_path, capsys):
        import json

        rc = main(
            ["resilience", "--scenario", "smoke",
             "--out-dir", str(tmp_path), "--report", "r.json"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "resilience campaign" in out and "verdict: PASS" in out
        doc = json.loads((tmp_path / "r.json").read_text())
        assert doc["kind"] == "repro-resilience"
        assert doc["ok"] and not doc["failures"]
        (run,) = doc["runs"]
        assert run["scenario"]["name"] == "smoke"
        assert run["invariants"]["violations"] == 0
        assert run["audits"]["sharded_ok"]

    def test_lottery_is_deterministic(self, tmp_path, capsys):
        docs = []
        for name in ("a.json", "b.json"):
            rc = main(
                ["resilience", "--scenario", "smoke",
                 "--lottery", "1", "--lottery-seed", "4",
                 "--no-shrink", "--out-dir", str(tmp_path),
                 "--report", name]
            )
            capsys.readouterr()
            docs.append((tmp_path / name).read_bytes())
        assert docs[0] == docs[1]

    def test_failing_scenario_shrinks_to_a_repro_file(
        self, tmp_path, capsys, monkeypatch
    ):
        import dataclasses
        import json

        from repro.runtime import scenario as sc_mod

        broken = dataclasses.replace(
            sc_mod.CATALOG["smoke"], name="broken", min_availability=1.01
        )
        monkeypatch.setattr(sc_mod, "CATALOG", {"broken": broken})
        rc = main(
            ["resilience", "--scenario", "broken",
             "--out-dir", str(tmp_path), "--report", "r.json"]
        )
        out = capsys.readouterr()
        assert rc == 1
        assert "verdict: FAIL" in out.out
        assert "shrunk broken" in out.out
        repro_file = tmp_path / "broken_scenario.json"
        mini = sc_mod.Scenario.from_dict(
            json.loads(repro_file.read_text())
        )
        assert mini.name == "broken-shrunk"
        doc = json.loads((tmp_path / "r.json").read_text())
        assert doc["runs"][0]["shrunk_scenario"]["name"] == "broken-shrunk"

    def test_unknown_scenario_rejected(self, capsys):
        rc = main(["resilience", "--scenario", "nope"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown scenario" in err

    def test_event_export_passes_sharded_audit(self, tmp_path, capsys):
        rc = main(
            ["resilience", "--scenario", "smoke",
             "--out-dir", str(tmp_path), "--events", "ev.jsonl"]
        )
        assert rc == 0
        capsys.readouterr()
        # The exported composed log replays through the audit CLI.
        assert main(
            ["audit", "--sharded", str(tmp_path / "ev.jsonl")]
        ) == 0
        capsys.readouterr()


class TestOutDirRouting:
    def test_relative_artifacts_land_in_out_dir(self, tmp_path, capsys):
        out = tmp_path / "nested" / "artifacts"
        rc = main(
            ["chaos", *FAST, "--out-dir", str(out),
             "--report", "report.json", "--events", "events.jsonl"]
        )
        capsys.readouterr()
        assert rc == 0
        assert (out / "report.json").exists()
        assert (out / "events.jsonl").exists()

    def test_absolute_paths_are_untouched(self, tmp_path, capsys):
        report = tmp_path / "abs_report.json"
        rc = main(
            ["chaos", *FAST, "--out-dir", str(tmp_path / "ignored"),
             "--report", str(report)]
        )
        capsys.readouterr()
        assert rc == 0
        assert report.exists()
        assert not (tmp_path / "ignored" / "abs_report.json").exists()
