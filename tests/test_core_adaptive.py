"""Tests for adaptive re-replication across workload epochs."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveReplicator
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.workload.drift import drifting_workloads


@pytest.fixture(scope="module")
def template():
    return paper_instance(
        ExperimentConfig(
            n_servers=20,
            n_objects=80,
            total_requests=12_000,
            rw_ratio=0.95,
            capacity_fraction=0.4,
            seed=41,
            name="adaptive-test",
        )
    )


@pytest.fixture(scope="module")
def epochs(template):
    return drifting_workloads(
        template.n_servers,
        template.n_objects,
        4,
        total_requests=12_000,
        rw_ratio=0.95,
        drift_fraction=0.3,
        seed=42,
    )


class TestPolicies:
    def test_outcome_count(self, template, epochs):
        out = AdaptiveReplicator(policy="adaptive").run(template, epochs)
        assert len(out) == len(epochs)

    def test_first_epoch_identical_across_policies(self, template, epochs):
        outs = {
            p: AdaptiveReplicator(policy=p).run(template, epochs)
            for p in ("adaptive", "static", "rebuild")
        }
        first = {p: o[0].otc for p, o in outs.items()}
        assert len({round(v, 6) for v in first.values()}) == 1

    def test_adaptive_beats_static_under_drift(self, template, epochs):
        adaptive = AdaptiveReplicator(policy="adaptive").run(template, epochs)
        static = AdaptiveReplicator(policy="static").run(template, epochs)
        # After drift has accumulated, adaptation must pay.
        assert adaptive[-1].savings_percent > static[-1].savings_percent

    def test_rebuild_is_quality_ceiling(self, template, epochs):
        adaptive = AdaptiveReplicator(policy="adaptive").run(template, epochs)
        rebuild = AdaptiveReplicator(policy="rebuild").run(template, epochs)
        for a, r in zip(adaptive, rebuild):
            assert a.savings_percent <= r.savings_percent + 3.0

    def test_adaptive_migrates_less_than_rebuild(self, template, epochs):
        adaptive = AdaptiveReplicator(policy="adaptive").run(template, epochs)
        rebuild = AdaptiveReplicator(policy="rebuild").run(template, epochs)
        assert sum(a.migration_volume for a in adaptive[1:]) < sum(
            r.migration_volume for r in rebuild[1:]
        )

    def test_static_never_migrates_after_first(self, template, epochs):
        static = AdaptiveReplicator(policy="static").run(template, epochs)
        assert all(o.migration_volume == 0.0 for o in static[1:])
        assert all(o.allocations == 0 for o in static[1:])

    def test_adaptive_evicts_under_drift(self, template, epochs):
        adaptive = AdaptiveReplicator(policy="adaptive").run(template, epochs)
        assert sum(o.evictions for o in adaptive[1:]) > 0

    def test_bad_policy(self):
        with pytest.raises(ConfigurationError):
            AdaptiveReplicator(policy="oracle")

    def test_empty_epochs(self, template):
        with pytest.raises(ConfigurationError):
            AdaptiveReplicator().run(template, [])

    def test_shape_mismatch(self, template):
        bad = drifting_workloads(5, 10, 1, total_requests=100, seed=0)
        with pytest.raises(ConfigurationError):
            AdaptiveReplicator().run(template, bad)


class TestEviction:
    def test_eviction_keeps_primaries(self, template, epochs):
        # Build a state with replicas, evict under a reversed workload.
        from repro.core.agt_ram import run_agt_ram
        from repro.core.adaptive import AdaptiveReplicator as AR

        res = run_agt_ram(template)
        inst2 = AR._epoch_instance(template, epochs[-1])
        state = ReplicationState.from_matrix(inst2, res.state.x)
        AR._evict_negative_keepers(inst2, state)
        cols = np.arange(inst2.n_objects)
        assert state.x[inst2.primaries, cols].all()

    def test_eviction_leaves_consistent_state(self, template, epochs):
        from repro.core.agt_ram import run_agt_ram
        from repro.core.adaptive import AdaptiveReplicator as AR
        from repro.drp.feasibility import check_state

        res = run_agt_ram(template)
        inst2 = AR._epoch_instance(template, epochs[-1])
        state = ReplicationState.from_matrix(inst2, res.state.x)
        AR._evict_negative_keepers(inst2, state)
        check_state(state)


class TestMigrationAccounting:
    def test_no_change_no_volume(self, template):
        from repro.core.adaptive import AdaptiveReplicator as AR

        x = ReplicationState.primaries_only(template).x
        assert AR._migration_volume(template, x, x) == 0.0

    def test_volume_positive_for_new_replica(self, template):
        from repro.core.adaptive import AdaptiveReplicator as AR

        before = ReplicationState.primaries_only(template).x.copy()
        after = before.copy()
        # Place one replica somewhere that isn't the primary.
        k = 0
        i = (template.primaries[0] + 1) % template.n_servers
        after[i, k] = True
        vol = AR._migration_volume(template, before, after)
        expected = float(template.sizes[k]) * float(
            template.cost[i, template.primaries[0]]
        )
        assert vol == pytest.approx(expected)


class TestDriftGenerator:
    def test_epoch_count_and_shapes(self):
        epochs = drifting_workloads(6, 20, 3, total_requests=1_000, seed=1)
        assert len(epochs) == 3
        for e in epochs:
            assert e.workload.reads.shape == (6, 20)

    def test_sizes_shared_across_epochs(self):
        epochs = drifting_workloads(6, 20, 3, total_requests=1_000, seed=2)
        for e in epochs[1:]:
            assert np.array_equal(e.workload.sizes, epochs[0].workload.sizes)

    def test_popularity_actually_drifts(self):
        epochs = drifting_workloads(
            6, 50, 4, total_requests=1_000, drift_fraction=0.5, seed=3
        )
        from repro.workload.drift import rank_displacement

        disp = rank_displacement(epochs)
        assert len(disp) == 3
        assert all(d > 0 for d in disp)

    def test_zero_drift_freezes_ranks(self):
        # drift_fraction=0 still swaps one pair (the documented minimum);
        # verify displacement stays tiny.
        epochs = drifting_workloads(
            6, 100, 3, total_requests=1_000, drift_fraction=0.0, seed=4
        )
        from repro.workload.drift import rank_displacement

        assert all(d < 3.0 for d in rank_displacement(epochs))

    def test_deterministic(self):
        a = drifting_workloads(5, 15, 2, total_requests=500, seed=9)
        b = drifting_workloads(5, 15, 2, total_requests=500, seed=9)
        assert np.array_equal(a[1].workload.reads, b[1].workload.reads)

    def test_rw_ratio_respected(self):
        epochs = drifting_workloads(
            8, 30, 2, total_requests=50_000, rw_ratio=0.9, seed=10
        )
        for e in epochs:
            assert e.workload.realized_rw_ratio() == pytest.approx(0.9, abs=0.02)
