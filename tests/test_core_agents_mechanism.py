"""Tests for ReplicaAgent and the Mechanism/audit abstractions."""

import numpy as np
import pytest

from repro.core.agents import Bid, ReplicaAgent
from repro.core.mechanism import MechanismAudit, RoundRecord
from repro.core.strategies import OverProjection, UnderProjection
from repro.drp.benefit import BenefitEngine
from repro.drp.state import ReplicationState
from repro.errors import MechanismProtocolError


@pytest.fixture()
def engine(line_instance):
    state = ReplicationState.primaries_only(line_instance)
    return BenefitEngine(line_instance, state)


class TestReplicaAgent:
    def test_truthful_bid_is_argmax(self, engine):
        agent = ReplicaAgent(server=2)
        bid = agent.make_bid(engine)
        assert isinstance(bid, Bid)
        assert bid.obj == 0 and bid.value == pytest.approx(10.0)

    def test_true_valuations_copy(self, engine):
        agent = ReplicaAgent(server=1)
        v = agent.true_valuations(engine)
        v[:] = 0  # mutating the copy must not corrupt the engine
        assert engine.matrix[1, 0] != 0

    def test_strategy_scales_report(self, engine):
        agent = ReplicaAgent(server=2, strategy=OverProjection(2.0))
        bid = agent.make_bid(engine)
        assert bid.value == pytest.approx(20.0)

    def test_abstains_when_no_eligible(self, line_instance):
        state = ReplicationState.primaries_only(line_instance)
        state.add_replica(1, 0)
        state.add_replica(1, 1)  # server 1 full
        engine = BenefitEngine(line_instance, state)
        agent = ReplicaAgent(server=1)
        assert agent.make_bid(engine) is None

    def test_award_bookkeeping(self):
        agent = ReplicaAgent(server=0)
        agent.award(obj=3, payment=4.0, true_value=9.0)
        assert agent.payments_received == 4.0
        assert agent.utility == 5.0
        assert agent.objects_won == [3]

    def test_award_ineligible_rejected(self):
        agent = ReplicaAgent(server=0)
        with pytest.raises(MechanismProtocolError):
            agent.award(obj=1, payment=0.0, true_value=-np.inf)


class TestMechanismAudit:
    def make_audit(self):
        audit = MechanismAudit()
        audit.append(
            RoundRecord(
                reported=np.array([1.0, 5.0]),
                objects=np.array([0, 1]),
                winner=1,
                obj=1,
                payment=1.0,
                true_value=5.0,
            )
        )
        audit.append(
            RoundRecord(
                reported=np.array([2.0, -np.inf]),
                objects=np.array([0, -1]),
                winner=0,
                obj=0,
                payment=0.0,
                true_value=2.0,
            )
        )
        audit.append(
            RoundRecord(
                reported=np.array([-np.inf, -np.inf]),
                objects=np.array([-1, -1]),
                winner=-1,
                obj=-1,
                payment=0.0,
                true_value=0.0,
            )
        )
        return audit

    def test_len(self):
        assert len(self.make_audit()) == 3

    def test_total_payments_skips_terminal(self):
        assert self.make_audit().total_payments() == 1.0

    def test_payments_by_agent(self):
        p = self.make_audit().payments_by_agent(2)
        assert np.array_equal(p, [0.0, 1.0])

    def test_utilities_by_agent(self):
        u = self.make_audit().utilities_by_agent(2)
        assert u[1] == pytest.approx(4.0)
        assert u[0] == pytest.approx(2.0)
