"""Tests for the AGT-RAM mechanism (Figure 2)."""

import numpy as np
import pytest

from repro.core.agt_ram import AGTRam, run_agt_ram
from repro.core.strategies import OverProjection, UnderProjection
from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.feasibility import check_state
from repro.errors import ConfigurationError


class TestBasicRun:
    def test_reduces_otc(self, read_heavy_instance):
        res = run_agt_ram(read_heavy_instance)
        assert res.otc < primary_only_otc(read_heavy_instance)
        assert res.savings_percent > 10.0

    def test_final_state_feasible(self, read_heavy_instance):
        check_state(run_agt_ram(read_heavy_instance).state)

    def test_rounds_equal_replicas(self, read_heavy_instance):
        res = run_agt_ram(read_heavy_instance)
        assert res.rounds == res.replicas_allocated

    def test_deterministic(self, tiny_instance):
        a = run_agt_ram(tiny_instance)
        b = run_agt_ram(tiny_instance)
        assert np.array_equal(a.state.x, b.state.x)
        assert a.otc == b.otc

    def test_line_instance_exact(self, line_instance):
        # Round 1: best bid is server 2 / object 0 (value 10).
        res = run_agt_ram(line_instance, record_audit=True)
        first = res.extra["audit"].rounds[0]
        assert (first.winner, first.obj) == (2, 0)
        assert first.true_value == pytest.approx(10.0)

    def test_every_allocation_positive_local_benefit(self, tiny_instance):
        res = run_agt_ram(tiny_instance, record_audit=True)
        for rec in res.extra["audit"].rounds:
            if rec.winner >= 0:
                assert rec.true_value > 0.0

    def test_monotone_otc_decrease(self, tiny_instance):
        # Local benefit is a lower bound on global benefit, so every
        # accepted allocation strictly reduces OTC.
        from repro.drp.state import ReplicationState

        res = run_agt_ram(tiny_instance, record_audit=True)
        st = ReplicationState.primaries_only(tiny_instance)
        last = total_otc(st)
        for rec in res.extra["audit"].rounds:
            if rec.winner < 0:
                continue
            st.add_replica(rec.winner, rec.obj)
            cur = total_otc(st)
            assert cur < last
            last = cur

    def test_max_rounds_cap(self, read_heavy_instance):
        res = run_agt_ram(read_heavy_instance, max_rounds=5)
        assert res.rounds == 5
        assert res.replicas_allocated == 5

    def test_write_heavy_few_allocations(self, write_heavy_instance):
        res = run_agt_ram(write_heavy_instance)
        # Local CoR is rarely positive under heavy writes.
        assert res.replicas_allocated < write_heavy_instance.n_objects

    def test_payments_nonnegative(self, read_heavy_instance):
        res = run_agt_ram(read_heavy_instance)
        assert (res.extra["payments"] >= 0).all()

    def test_truthful_utilities_nonnegative(self, read_heavy_instance):
        # Under second price and truthful play, every winner's per-round
        # utility is >= 0, so aggregates are too.
        res = run_agt_ram(read_heavy_instance)
        assert (res.extra["utilities"] >= -1e-9).all()


class TestConfiguration:
    def test_bad_payment_rule(self):
        with pytest.raises(ConfigurationError):
            AGTRam(payment_rule="third_price")

    def test_bad_valuation(self):
        with pytest.raises(ConfigurationError):
            AGTRam(valuation="psychic")

    def test_bad_max_rounds(self):
        with pytest.raises(ConfigurationError):
            AGTRam(max_rounds=-1)


class TestGlobalValuationAblation:
    def test_global_oracle_at_least_as_good(self, read_heavy_instance):
        local = run_agt_ram(read_heavy_instance, valuation="local")
        glob = run_agt_ram(read_heavy_instance, valuation="global")
        assert glob.savings_percent >= local.savings_percent - 1e-9

    def test_global_matches_greedy_quality(self, tiny_instance):
        # Global-oracle AGT-RAM picks the argmax ΔOTC each round — the
        # same choice rule as Greedy — so the final OTC must match.
        from repro.baselines.greedy import GreedyPlacer

        glob = run_agt_ram(tiny_instance, valuation="global")
        greedy = GreedyPlacer().place(tiny_instance)
        assert glob.otc == pytest.approx(greedy.otc)

    def test_algorithm_label(self, tiny_instance):
        assert run_agt_ram(tiny_instance, valuation="global").algorithm == (
            "AGT-RAM(global)"
        )


class TestStrategicAgents:
    def test_over_projection_changes_nothing_or_loses(self, tiny_instance):
        base = run_agt_ram(tiny_instance)
        for agent in range(0, tiny_instance.n_servers, 5):
            dev = run_agt_ram(
                tiny_instance, strategies={agent: OverProjection(3.0)}
            )
            assert (
                dev.extra["utilities"][agent]
                <= base.extra["utilities"][agent] + 1e-9
            )

    def test_under_projection_never_gains(self, tiny_instance):
        base = run_agt_ram(tiny_instance)
        for agent in range(0, tiny_instance.n_servers, 5):
            dev = run_agt_ram(
                tiny_instance, strategies={agent: UnderProjection(0.3)}
            )
            assert (
                dev.extra["utilities"][agent]
                <= base.extra["utilities"][agent] + 1e-9
            )

    def test_deviation_hurts_system(self, read_heavy_instance):
        # Widespread under-projection suppresses allocations and system
        # savings (the mechanism's own argument for truthfulness).
        strategies = {
            i: UnderProjection(0.1) for i in range(read_heavy_instance.n_servers)
        }
        base = run_agt_ram(read_heavy_instance)
        dev = run_agt_ram(read_heavy_instance, strategies=strategies)
        assert dev.replicas_allocated <= base.replicas_allocated
