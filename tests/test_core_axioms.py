"""Tests for the six-axiom verification harness."""

import numpy as np
import pytest

from repro.core.agt_ram import run_agt_ram
from repro.core.axioms import AXIOM_NAMES, verify_axioms
from repro.core.mechanism import RoundRecord
from repro.core.strategies import OverProjection
from repro.errors import ReproError


@pytest.fixture(scope="module")
def audited(tiny_instance):
    return run_agt_ram(tiny_instance, record_audit=True)


class TestVerifyAxioms:
    def test_all_pass_for_honest_run(self, tiny_instance, audited):
        checks = verify_axioms(tiny_instance, audited)
        assert set(checks) == set(AXIOM_NAMES)
        for name, check in checks.items():
            assert check.passed, f"{name}: {check.detail}"

    def test_requires_audit(self, tiny_instance):
        res = run_agt_ram(tiny_instance, record_audit=False)
        with pytest.raises(ReproError, match="audit"):
            verify_axioms(tiny_instance, res)

    def test_axioms_hold_under_deviation(self, tiny_instance):
        # Axioms are properties of the *mechanism*, not of agent honesty:
        # they must hold even when an agent deviates.
        res = run_agt_ram(
            tiny_instance,
            strategies={0: OverProjection(2.0)},
            record_audit=True,
        )
        checks = verify_axioms(tiny_instance, res)
        for name in (
            "axiom1_ingredients",
            "axiom3_truthful",
            "axiom4_utilitarian",
            "axiom5_motivation",
            "axiom6_algorithmic_output",
        ):
            assert checks[name].passed, checks[name].detail

    def test_first_price_breaks_axiom3(self, tiny_instance):
        res = run_agt_ram(
            tiny_instance, payment_rule="first_price", record_audit=True
        )
        checks = verify_axioms(tiny_instance, res)
        # With any competition, paying your own bid != second-best.
        assert not checks["axiom3_truthful"].passed

    def test_global_valuation_breaks_axiom2(self, read_heavy_instance):
        # The ablation oracle uses system-wide data an agent cannot
        # privately hold -> agent-disposition axiom fails by design.
        res = run_agt_ram(
            read_heavy_instance, valuation="global", record_audit=True
        )
        checks = verify_axioms(read_heavy_instance, res)
        assert not checks["axiom2_agent_disposition"].passed


class TestTamperedAudits:
    def _tamper(self, audited, **overrides):
        import copy

        res = copy.copy(audited)
        res.extra = dict(audited.extra)
        audit = copy.deepcopy(audited.extra["audit"])
        rec = audit.rounds[0]
        fields = {
            "reported": rec.reported,
            "objects": rec.objects,
            "winner": rec.winner,
            "obj": rec.obj,
            "payment": rec.payment,
            "true_value": rec.true_value,
        }
        fields.update(overrides)
        audit.rounds[0] = RoundRecord(**fields)
        res.extra["audit"] = audit
        return res

    def test_wrong_payment_detected(self, tiny_instance, audited):
        bad = self._tamper(audited, payment=audited.extra["audit"].rounds[0].payment + 1)
        checks = verify_axioms(tiny_instance, bad)
        assert not checks["axiom3_truthful"].passed

    def test_non_argmax_winner_detected(self, tiny_instance, audited):
        rec = audited.extra["audit"].rounds[0]
        loser = int(np.argmin(np.where(np.isfinite(rec.reported), rec.reported, np.inf)))
        if loser == rec.winner:
            pytest.skip("degenerate round")
        bad = self._tamper(audited, winner=loser)
        checks = verify_axioms(tiny_instance, bad)
        assert not (
            checks["axiom4_utilitarian"].passed
            and checks["axiom2_agent_disposition"].passed
        )

    def test_wrong_true_value_detected(self, tiny_instance, audited):
        bad = self._tamper(
            audited, true_value=audited.extra["audit"].rounds[0].true_value * 2 + 1
        )
        checks = verify_axioms(tiny_instance, bad)
        assert not checks["axiom2_agent_disposition"].passed

    def test_award_mismatch_detected(self, tiny_instance, audited):
        rec = audited.extra["audit"].rounds[0]
        other_obj = (rec.obj + 1) % tiny_instance.n_objects
        bad = self._tamper(audited, obj=other_obj)
        checks = verify_axioms(tiny_instance, bad)
        assert not checks["axiom6_algorithmic_output"].passed
