"""Tests for the batched-round AGT-RAM variant."""

import numpy as np
import pytest

from repro.core.agt_ram import AGTRam, run_agt_ram
from repro.drp.feasibility import check_state
from repro.errors import ConfigurationError


class TestBatchedRounds:
    def test_batch_one_identical_to_default(self, tiny_instance):
        a = AGTRam(batch_size=1).run(tiny_instance)
        b = run_agt_ram(tiny_instance)
        assert np.array_equal(a.state.x, b.state.x)

    def test_fewer_rounds(self, read_heavy_instance):
        single = run_agt_ram(read_heavy_instance)
        batched = AGTRam(batch_size=8).run(read_heavy_instance)
        assert batched.rounds < single.rounds
        # Roughly B-fold fewer (not exact: tail rounds have < B bidders).
        assert batched.rounds <= single.rounds // 2

    def test_quality_close(self, read_heavy_instance):
        single = run_agt_ram(read_heavy_instance)
        batched = AGTRam(batch_size=8).run(read_heavy_instance)
        assert batched.savings_percent > 0.9 * single.savings_percent

    def test_feasible(self, read_heavy_instance):
        check_state(AGTRam(batch_size=8).run(read_heavy_instance).state)

    def test_positive_savings(self, read_heavy_instance):
        res = AGTRam(batch_size=4).run(read_heavy_instance)
        assert res.savings_percent > 0

    def test_uniform_price_below_winner_values(self, read_heavy_instance):
        # The clearing price is the best rejected report, so every
        # winner's per-award utility is >= 0 under truthful play.
        res = AGTRam(batch_size=4).run(read_heavy_instance)
        assert (res.extra["utilities"] >= -1e-9).all()

    def test_audit_records_batch_members(self, tiny_instance):
        res = AGTRam(batch_size=4).run(tiny_instance, record_audit=True)
        allocs = [r for r in res.extra["audit"].rounds if r.winner >= 0]
        assert len(allocs) == res.replicas_allocated

    def test_batch_larger_than_agents(self, line_instance):
        res = AGTRam(batch_size=100).run(line_instance)
        check_state(res.state)

    def test_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            AGTRam(batch_size=0)
