"""Tests for the DRP[σ] / DRP[π,σ] disposition variants (Axiom 2)."""

import numpy as np
import pytest

from repro.core.agt_ram import run_agt_ram
from repro.core.disposition import (
    capacity_misreport_gain,
    cor_knowledge_gain,
    run_with_declared_capacities,
)
from repro.drp.feasibility import check_state
from repro.errors import ConfigurationError


class TestDeclaredCapacities:
    def test_truthful_matches_pi_model(self, read_heavy_instance):
        # Declaring the true capacities reproduces plain AGT-RAM.
        sigma = run_with_declared_capacities(
            read_heavy_instance, read_heavy_instance.capacities
        )
        pi = run_agt_ram(read_heavy_instance)
        assert np.array_equal(sigma.state.x, pi.state.x)
        assert sigma.otc == pytest.approx(pi.otc)

    def test_state_always_feasible(self, read_heavy_instance):
        # Even wild over-declarations cannot break physical storage.
        declared = read_heavy_instance.capacities * 100
        res = run_with_declared_capacities(read_heavy_instance, declared)
        check_state(res.state)

    def test_under_declaration_forfeits(self, read_heavy_instance):
        declared = read_heavy_instance.primary_load.copy()  # zero headroom
        res = run_with_declared_capacities(read_heavy_instance, declared)
        assert res.replicas_allocated == 0

    def test_bad_shape(self, read_heavy_instance):
        with pytest.raises(ConfigurationError):
            run_with_declared_capacities(read_heavy_instance, np.array([1, 2]))

    def test_voided_awards_recorded(self, read_heavy_instance):
        declared = read_heavy_instance.capacities.copy()
        # One compulsive over-declarer with no real headroom.
        agent = int(np.argmax(read_heavy_instance.reads.sum(axis=1)))
        declared[agent] = read_heavy_instance.capacities[agent] * 50
        res = run_with_declared_capacities(read_heavy_instance, declared)
        # The agent may win awards beyond its real storage; every such
        # award is voided, never silently materialized.
        used = res.state.used[agent]
        assert used <= read_heavy_instance.capacities[agent]


class TestCapacityMisreportGain:
    @pytest.mark.parametrize("factor", [0.25, 3.0])
    def test_misreport_never_profits(self, read_heavy_instance, factor):
        for agent in range(0, read_heavy_instance.n_servers, 4):
            out = capacity_misreport_gain(read_heavy_instance, agent, factor)
            assert out.gain <= 1e-6, (agent, factor)

    def test_bad_factor(self, read_heavy_instance):
        with pytest.raises(ConfigurationError):
            capacity_misreport_gain(read_heavy_instance, 0, 0.0)

    def test_outcome_fields(self, read_heavy_instance):
        out = capacity_misreport_gain(read_heavy_instance, 0, 2.0)
        assert out.agent == 0 and out.factor == 2.0
        assert out.voided_awards >= 0


class TestCorKnowledgeGain:
    def test_knowledge_is_worthless_under_second_price(self, read_heavy_instance):
        # Even perfect knowledge of all competitors' CoR cannot improve
        # on truth-telling — the paper's justification for DRP[pi].
        for agent in range(read_heavy_instance.n_servers):
            assert cor_knowledge_gain(read_heavy_instance, agent) <= 1e-9
