"""Tests for the empirical truthfulness harness."""

import pytest

from repro.core.equilibrium import (
    full_run_utilities,
    one_shot_utilities,
    truthfulness_gap,
)
from repro.core.strategies import (
    OverProjection,
    RandomProjection,
    ShillBid,
    TopInflation,
    UnderProjection,
)


class TestOneShot:
    @pytest.mark.parametrize(
        "strategy",
        [OverProjection(2.0), OverProjection(10.0), UnderProjection(0.2)],
    )
    def test_second_price_dominance_exact(self, read_heavy_instance, strategy):
        # One-shot second-price: deviating can never beat truthful.
        for agent in range(read_heavy_instance.n_servers):
            comp = one_shot_utilities(read_heavy_instance, agent, strategy)
            assert comp.deviating <= comp.truthful + 1e-9

    def test_random_projection_dominance(self, read_heavy_instance):
        for agent in range(0, read_heavy_instance.n_servers, 3):
            comp = one_shot_utilities(
                read_heavy_instance, agent, RandomProjection(1.0, seed=agent)
            )
            assert comp.deviating <= comp.truthful + 1e-9

    def test_first_price_can_reward_deviation(self, read_heavy_instance):
        # Under pay-your-bid, shading the bid below the true value is
        # profitable for the would-be winner: find at least one agent
        # that strictly gains.
        gains = []
        for agent in range(read_heavy_instance.n_servers):
            comp = one_shot_utilities(
                read_heavy_instance,
                agent,
                UnderProjection(0.6),
                payment_rule="first_price",
            )
            gains.append(comp.gain_from_deviation)
        assert max(gains) > 0.0

    def test_gain_property(self, read_heavy_instance):
        comp = one_shot_utilities(read_heavy_instance, 0, OverProjection(2.0))
        assert comp.gain_from_deviation == comp.deviating - comp.truthful

    @pytest.mark.parametrize(
        "strategy",
        [TopInflation(2.0), TopInflation(10.0), ShillBid(1e6), ShillBid(0.5)],
    )
    def test_byzantine_strategies_stay_dominated(
        self, read_heavy_instance, strategy
    ):
        # The Byzantine layer's per-bid transforms are still priced by
        # Theorem 5: under second-price payments neither the stealthy
        # argmax inflation nor a flat shill bid can beat truth-telling.
        for agent in range(read_heavy_instance.n_servers):
            comp = one_shot_utilities(read_heavy_instance, agent, strategy)
            assert comp.deviating <= comp.truthful + 1e-9


class TestFullRun:
    def test_returns_both_utilities(self, tiny_instance):
        comp = full_run_utilities(tiny_instance, 0, OverProjection(2.0))
        assert comp.agent == 0
        assert comp.truthful >= 0.0

    def test_aggregate_deviation_unprofitable(self, tiny_instance):
        # Empirical check over several agents (per-round dominance makes
        # profitable full-run deviations vanishingly unlikely).
        comps = truthfulness_gap(
            tiny_instance,
            lambda: OverProjection(3.0),
            n_agents=6,
            one_shot=False,
            seed=0,
        )
        assert all(c.gain_from_deviation <= 1e-6 for c in comps)


class TestTruthfulnessGap:
    def test_samples_requested_agents(self, tiny_instance):
        comps = truthfulness_gap(
            tiny_instance, lambda: UnderProjection(0.5), n_agents=5, seed=1
        )
        assert len(comps) == 5
        assert len({c.agent for c in comps}) == 5

    def test_caps_at_population(self, line_instance):
        comps = truthfulness_gap(
            line_instance, lambda: OverProjection(2.0), n_agents=50, seed=2
        )
        assert len(comps) == 3
