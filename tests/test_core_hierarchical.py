"""Tests for the hierarchical/regional mechanism (paper §7 extension)."""

import numpy as np
import pytest

from repro.core.agt_ram import run_agt_ram
from repro.core.hierarchical import HierarchicalAGTRam, partition_by_proximity
from repro.drp.feasibility import check_state
from repro.errors import ConfigurationError


class TestPartition:
    def test_shape_and_range(self, tiny_instance):
        part = partition_by_proximity(tiny_instance, 4, seed=0)
        assert part.shape == (tiny_instance.n_servers,)
        assert set(np.unique(part)) <= set(range(4))

    def test_all_regions_populated(self, tiny_instance):
        part = partition_by_proximity(tiny_instance, 4, seed=0)
        assert len(np.unique(part)) == 4

    def test_single_region(self, tiny_instance):
        part = partition_by_proximity(tiny_instance, 1, seed=0)
        assert (part == 0).all()

    def test_n_regions_equals_servers(self, tiny_instance):
        m = tiny_instance.n_servers
        part = partition_by_proximity(tiny_instance, m, seed=0)
        assert len(np.unique(part)) == m

    def test_too_many_regions(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            partition_by_proximity(tiny_instance, tiny_instance.n_servers + 1)

    def test_deterministic(self, tiny_instance):
        a = partition_by_proximity(tiny_instance, 3, seed=5)
        b = partition_by_proximity(tiny_instance, 3, seed=5)
        assert np.array_equal(a, b)

    def test_proximity_property(self, tiny_instance):
        # Every server is closer to some member of its own region's seed
        # set than... we verify weak coherence: mean intra-region cost is
        # below mean inter-region cost.
        part = partition_by_proximity(tiny_instance, 4, seed=1)
        c = tiny_instance.cost
        same = part[:, None] == part[None, :]
        off_diag = ~np.eye(len(part), dtype=bool)
        intra = c[same & off_diag].mean()
        inter = c[~same].mean()
        assert intra < inter


class TestSequentialMode:
    def test_identical_to_flat(self, read_heavy_instance):
        # One allocation per global round, root picks the global max —
        # the allocation sequence must match flat AGT-RAM exactly.
        flat = run_agt_ram(read_heavy_instance)
        seq = HierarchicalAGTRam(n_regions=4, mode="sequential", seed=0).run(
            read_heavy_instance
        )
        assert np.array_equal(flat.state.x, seq.state.x)
        assert flat.rounds == seq.rounds

    def test_payments_at_least_flat(self, read_heavy_instance):
        # The hierarchical price is max(regional, root) second price, so
        # total payments can only rise relative to flat.
        flat = run_agt_ram(read_heavy_instance)
        seq = HierarchicalAGTRam(n_regions=4, mode="sequential", seed=0).run(
            read_heavy_instance
        )
        assert seq.extra["payments"].sum() >= flat.extra["payments"].sum() - 1e-6

    def test_state_feasible(self, read_heavy_instance):
        res = HierarchicalAGTRam(n_regions=3, mode="sequential", seed=1).run(
            read_heavy_instance
        )
        check_state(res.state)


class TestConcurrentMode:
    def test_fewer_rounds_than_flat(self, read_heavy_instance):
        flat = run_agt_ram(read_heavy_instance)
        con = HierarchicalAGTRam(n_regions=4, mode="concurrent", seed=0).run(
            read_heavy_instance
        )
        assert con.rounds < flat.rounds

    def test_quality_close_to_flat(self, read_heavy_instance):
        flat = run_agt_ram(read_heavy_instance)
        con = HierarchicalAGTRam(n_regions=4, mode="concurrent", seed=0).run(
            read_heavy_instance
        )
        assert con.savings_percent > 0.85 * flat.savings_percent

    def test_state_feasible(self, read_heavy_instance):
        res = HierarchicalAGTRam(n_regions=4, mode="concurrent", seed=0).run(
            read_heavy_instance
        )
        check_state(res.state)

    def test_region_stats_sum_to_total(self, read_heavy_instance):
        res = HierarchicalAGTRam(n_regions=4, mode="concurrent", seed=0).run(
            read_heavy_instance
        )
        stats = res.extra["region_stats"]
        assert sum(s.allocations for s in stats.values()) == (
            res.replicas_allocated
        )
        assert sum(s.servers for s in stats.values()) == (
            read_heavy_instance.n_servers
        )


class TestFailureResilience:
    def test_failed_region_abstains(self, read_heavy_instance):
        res = HierarchicalAGTRam(
            n_regions=4, mode="concurrent", seed=0, failed_regions=[0]
        ).run(read_heavy_instance)
        part = res.extra["partition"]
        dead_servers = np.flatnonzero(part == 0)
        # No replica beyond the primaries was placed in the dead region.
        extra = res.state.x.copy()
        extra[read_heavy_instance.primaries, np.arange(read_heavy_instance.n_objects)] = False
        assert not extra[dead_servers].any()

    def test_degrades_gracefully(self, read_heavy_instance):
        healthy = HierarchicalAGTRam(n_regions=4, mode="concurrent", seed=0).run(
            read_heavy_instance
        )
        degraded = HierarchicalAGTRam(
            n_regions=4, mode="concurrent", seed=0, failed_regions=[0]
        ).run(read_heavy_instance)
        assert 0.0 < degraded.savings_percent <= healthy.savings_percent + 1e-9

    def test_all_regions_failed(self, read_heavy_instance):
        res = HierarchicalAGTRam(
            n_regions=2, mode="concurrent", seed=0, failed_regions=[0, 1]
        ).run(read_heavy_instance)
        assert res.replicas_allocated == 0


class TestConfiguration:
    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            HierarchicalAGTRam(mode="federated")

    def test_explicit_partition(self, tiny_instance):
        part = np.arange(tiny_instance.n_servers) % 2
        res = HierarchicalAGTRam(partition=part, mode="concurrent").run(
            tiny_instance
        )
        assert np.array_equal(res.extra["partition"], part)

    def test_bad_partition_shape(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            HierarchicalAGTRam(partition=np.zeros(3, dtype=int)).run(tiny_instance)

    def test_max_rounds(self, read_heavy_instance):
        res = HierarchicalAGTRam(
            n_regions=4, mode="concurrent", seed=0, max_rounds=3
        ).run(read_heavy_instance)
        assert res.rounds == 3


class TestEngineSelector:
    @pytest.mark.parametrize("mode", ["sequential", "concurrent"])
    def test_naive_and_vectorized_identical(self, read_heavy_instance, mode):
        runs = {
            name: HierarchicalAGTRam(
                n_regions=4, mode=mode, seed=0, engine=name
            ).run(read_heavy_instance)
            for name in ("naive", "vectorized")
        }
        naive, fast = runs["naive"], runs["vectorized"]
        # Same winners, same prices, same placement, bit for bit.
        assert np.array_equal(naive.state.x, fast.state.x)
        assert naive.otc == fast.otc
        assert naive.rounds == fast.rounds
        assert np.array_equal(
            naive.extra["payments"], fast.extra["payments"]
        )
        assert naive.extra["engine"] == "naive"
        assert fast.extra["engine"] == "vectorized"

    def test_bad_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchicalAGTRam(engine="turbo")

    def test_cooperative_has_no_vectorized_engine(self):
        with pytest.raises(ConfigurationError):
            HierarchicalAGTRam(
                regional_game="cooperative", engine="vectorized"
            )


class TestRegionTaggedEvents:
    def test_concurrent_rounds_carry_region(self, tiny_instance):
        from repro.obs import events as ev

        with ev.capture() as sink:
            res = HierarchicalAGTRam(
                n_regions=4, mode="concurrent", seed=7
            ).run(tiny_instance)
        part = res.extra["partition"]
        starts = [e for e in sink.events if type(e).type == "round_start"]
        winners = [e for e in sink.events if type(e).type == "winner"]
        assert starts and winners
        regions = {e.region for e in starts}
        assert regions <= set(range(4))
        assert all(e.region >= 0 for e in starts)
        # The tagged winner really lives in the tagged region.
        for e in winners:
            assert int(part[e.agent]) == e.region

    def test_flat_rounds_stay_untagged(self, tiny_instance):
        from repro.obs import events as ev

        with ev.capture() as sink:
            run_agt_ram(tiny_instance)
        starts = [e for e in sink.events if type(e).type == "round_start"]
        assert starts
        assert {e.region for e in starts} == {-1}
