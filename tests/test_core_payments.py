"""Tests for the payment rules (Axiom 5 / Theorem 5)."""

import numpy as np
import pytest

from repro.core.payments import (
    PAYMENT_RULES,
    first_price_payment,
    second_best_payment,
    winner_utility,
)


class TestSecondBestPayment:
    def test_basic(self):
        assert second_best_payment([3.0, 7.0, 5.0], 1) == 5.0

    def test_ignores_winner_bid(self):
        # The winner's own report must not influence the price.
        assert second_best_payment([3.0, 100.0, 5.0], 1) == second_best_payment(
            [3.0, 7.0, 5.0], 1
        )

    def test_sole_bidder_pays_zero(self):
        assert second_best_payment([-np.inf, 4.0, -np.inf], 1) == 0.0

    def test_single_agent(self):
        assert second_best_payment([9.0], 0) == 0.0

    def test_negative_second_clamped(self):
        assert second_best_payment([-2.0, 4.0], 1) == 0.0

    def test_winner_not_max_still_prices_others(self):
        # Pricing works even for a non-argmax winner (protocol tolerance).
        assert second_best_payment([3.0, 1.0, 2.0], 1) == 3.0

    def test_bad_index(self):
        with pytest.raises(IndexError):
            second_best_payment([1.0], 3)


class TestFirstPricePayment:
    def test_pays_own_bid(self):
        assert first_price_payment([3.0, 7.0], 1) == 7.0

    def test_depends_on_own_bid(self):
        assert first_price_payment([3.0, 100.0], 1) != first_price_payment(
            [3.0, 7.0], 1
        )

    def test_infinite_bid_rejected(self):
        with pytest.raises(ValueError):
            first_price_payment([-np.inf], 0)

    def test_negative_clamped(self):
        assert first_price_payment([-1.0, -5.0], 0) == 0.0


class TestRegistryAndUtility:
    def test_registry_complete(self):
        assert set(PAYMENT_RULES) == {"second_price", "first_price"}

    def test_winner_utility(self):
        assert winner_utility(10.0, 7.0) == 3.0

    def test_second_price_truthful_utility_nonnegative(self):
        # A truthful winner's utility is always >= 0: it won, so its true
        # value is the max, hence >= the second best it pays.
        rng = np.random.default_rng(0)
        for _ in range(100):
            bids = rng.uniform(0, 10, size=6)
            winner = int(np.argmax(bids))
            pay = second_best_payment(bids, winner)
            assert winner_utility(bids[winner], pay) >= 0.0

    def test_first_price_truthful_utility_zero(self):
        assert winner_utility(5.0, first_price_payment([1.0, 5.0], 1)) == 0.0
