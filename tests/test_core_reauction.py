"""Unit tests for the incremental re-auction (repro.core.reauction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_sub_instance, reauction_objects
from repro.drp.cost import otc_of_matrix
from repro.drp.feasibility import check_state
from repro.errors import ConfigurationError
from repro.runtime.simulator import SemiDistributedSimulator


@pytest.fixture(scope="module")
def placed(tiny_instance):
    return SemiDistributedSimulator().run(tiny_instance)


class TestBuildSubInstance:
    def test_slices_affected_columns(self, tiny_instance, placed):
        ks = [2, 5, 11]
        sub = build_sub_instance(tiny_instance, placed.state, ks)
        assert sub.n_servers == tiny_instance.n_servers
        assert sub.n_objects == len(ks)
        np.testing.assert_array_equal(sub.cost, tiny_instance.cost)
        np.testing.assert_array_equal(
            sub.sizes, tiny_instance.sizes[np.array(ks)]
        )
        np.testing.assert_array_equal(
            sub.primaries, tiny_instance.primaries[np.array(ks)]
        )

    def test_capacity_excludes_unaffected_replicas(
        self, tiny_instance, placed
    ):
        ks = np.array([0, 1])
        sub = build_sub_instance(tiny_instance, placed.state, ks)
        keep = placed.state.x.copy()
        keep[:, ks] = False
        np.testing.assert_allclose(
            sub.capacities,
            tiny_instance.capacities - keep @ tiny_instance.sizes,
        )
        # Feasible by construction: the affected primaries fit, since
        # they are stored right now under the same accounting.
        check_state(
            type(placed.state).primaries_only(sub)
        )

    def test_demand_overrides_used(self, tiny_instance, placed):
        reads = np.full_like(tiny_instance.reads, 3.0)
        writes = np.full_like(tiny_instance.writes, 1.0)
        sub = build_sub_instance(
            tiny_instance, placed.state, [4, 9], reads=reads, writes=writes
        )
        assert (sub.reads == 3.0).all()
        assert (sub.writes == 1.0).all()

    def test_bad_inputs_rejected(self, tiny_instance, placed):
        with pytest.raises(ConfigurationError):
            build_sub_instance(tiny_instance, placed.state, [])
        with pytest.raises(ConfigurationError):
            build_sub_instance(
                tiny_instance, placed.state, [tiny_instance.n_objects]
            )
        with pytest.raises(ConfigurationError):
            build_sub_instance(
                tiny_instance, placed.state, [0], reads=np.zeros((2, 2))
            )


class TestReauctionObjects:
    def test_merge_keeps_unaffected_columns(self, tiny_instance, placed):
        ks = [3, 7, 12]
        outcome = reauction_objects(tiny_instance, placed.state, ks)
        untouched = np.ones(tiny_instance.n_objects, dtype=bool)
        untouched[np.array(ks)] = False
        np.testing.assert_array_equal(
            outcome.state.x[:, untouched], placed.state.x[:, untouched]
        )
        check_state(outcome.state)

    def test_delta_matches_states(self, tiny_instance, placed):
        ks = [0, 5, 6, 20]
        outcome = reauction_objects(tiny_instance, placed.state, ks)
        for server, obj in outcome.added:
            assert obj in ks
            assert outcome.state.x[server, obj]
            assert not placed.state.x[server, obj]
        for server, obj in outcome.removed:
            assert obj in ks
            assert not outcome.state.x[server, obj]
            assert placed.state.x[server, obj]
            # Primaries never drop their copy.
            assert tiny_instance.primaries[obj] != server

    def test_same_demand_reauction_does_not_regress(
        self, tiny_instance, placed
    ):
        # Re-auctioning under the demand the placement was built for
        # starts from primaries-only, so it may land on a (slightly)
        # different local optimum — but OTC stays in the same ballpark
        # and never beats the mechanism by construction violations.
        ks = list(range(0, tiny_instance.n_objects, 4))
        outcome = reauction_objects(tiny_instance, placed.state, ks)
        assert outcome.otc_before == pytest.approx(
            otc_of_matrix(tiny_instance, placed.state.x)
        )
        assert outcome.otc_after == pytest.approx(
            otc_of_matrix(tiny_instance, outcome.state.x)
        )

    def test_otc_evaluated_against_override_demand(
        self, tiny_instance, placed
    ):
        rng = np.random.default_rng(8)
        reads = rng.integers(0, 50, tiny_instance.reads.shape).astype(float)
        writes = np.ones_like(tiny_instance.writes, dtype=float)
        outcome = reauction_objects(
            tiny_instance, placed.state, [1, 2, 3], reads=reads, writes=writes
        )
        from dataclasses import replace

        shifted = replace(tiny_instance, reads=reads, writes=writes)
        assert outcome.otc_before == pytest.approx(
            otc_of_matrix(shifted, placed.state.x)
        )
        assert outcome.otc_after == pytest.approx(
            otc_of_matrix(shifted, outcome.state.x)
        )
        assert outcome.improved == (outcome.otc_after < outcome.otc_before)

    def test_custom_placer_is_used(self, tiny_instance, placed):
        calls = []

        def placer(sub):
            calls.append(sub)
            return SemiDistributedSimulator().run(sub)

        outcome = reauction_objects(
            tiny_instance, placed.state, [2], placer=placer
        )
        assert len(calls) == 1
        assert calls[0].n_objects == 1
        assert outcome.sub_result.rounds >= 0

    def test_input_state_not_mutated(self, tiny_instance, placed):
        before = placed.state.x.copy()
        reauction_objects(tiny_instance, placed.state, [0, 1])
        np.testing.assert_array_equal(placed.state.x, before)
