"""Tests for agent reporting strategies."""

import numpy as np
import pytest

from repro.core.strategies import (
    OverProjection,
    RandomProjection,
    ShillBid,
    TopInflation,
    TruthfulStrategy,
    UnderProjection,
)
from repro.errors import ConfigurationError


def vec():
    return np.array([2.0, -1.0, -np.inf, 5.0])


class TestTruthful:
    def test_identity(self):
        assert np.array_equal(TruthfulStrategy().report(vec()), vec())


class TestOverProjection:
    def test_inflates_positive(self):
        out = OverProjection(2.0).report(vec())
        assert out[0] == 4.0 and out[3] == 10.0

    def test_raises_negative_toward_zero(self):
        out = OverProjection(2.0).report(vec())
        assert out[1] == -0.5  # -1/2: pushed *up*

    def test_preserves_ineligible(self):
        assert OverProjection(1.5).report(vec())[2] == -np.inf

    def test_factor_validation(self):
        with pytest.raises(ConfigurationError):
            OverProjection(1.0)
        with pytest.raises(ConfigurationError):
            OverProjection(0.5)

    def test_argmax_unchanged(self):
        # Monotone inflation never changes which object is reported.
        v = np.array([1.0, 3.0, 2.0])
        assert np.argmax(OverProjection(3.0).report(v)) == np.argmax(v)


class TestUnderProjection:
    def test_deflates_positive(self):
        out = UnderProjection(0.5).report(vec())
        assert out[0] == 1.0 and out[3] == 2.5

    def test_pushes_negative_down(self):
        out = UnderProjection(0.5).report(vec())
        assert out[1] == -2.0

    def test_factor_validation(self):
        with pytest.raises(ConfigurationError):
            UnderProjection(1.0)
        with pytest.raises(ConfigurationError):
            UnderProjection(0.0)


class TestRandomProjection:
    def test_preserves_ineligible(self):
        out = RandomProjection(0.8, seed=0).report(vec())
        assert out[2] == -np.inf

    def test_perturbs_values(self):
        out = RandomProjection(0.8, seed=0).report(vec())
        assert not np.array_equal(out[[0, 1, 3]], vec()[[0, 1, 3]])

    def test_sign_preserved(self):
        # Lognormal noise is positive, so signs survive.
        out = RandomProjection(1.0, seed=1).report(vec())
        assert out[0] > 0 and out[1] < 0

    def test_deterministic_with_seed(self):
        a = RandomProjection(0.5, seed=7).report(vec())
        b = RandomProjection(0.5, seed=7).report(vec())
        assert np.array_equal(a, b)

    def test_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            RandomProjection(0.0)


class TestTopInflation:
    def test_inflates_only_the_argmax(self):
        out = TopInflation(2.0).report(vec())
        assert out[3] == 10.0  # 5.0 is the top value
        assert out[0] == 2.0 and out[1] == -1.0 and out[2] == -np.inf

    def test_negative_top_pushed_toward_zero(self):
        v = np.array([-4.0, -2.0])
        out = TopInflation(2.0).report(v)
        assert out[1] == -1.0 and out[0] == -4.0

    def test_all_infinite_untouched(self):
        v = np.full(3, -np.inf)
        assert np.all(TopInflation(2.0).report(v) == -np.inf)

    def test_factor_validation(self):
        with pytest.raises(ConfigurationError):
            TopInflation(1.0)


class TestShillBid:
    def test_reports_fixed_value_on_top_object(self):
        out = ShillBid(8.75).report(vec())
        assert out[3] == 8.75
        # Every other eligible entry is withdrawn.
        assert out[0] == -np.inf and out[1] == -np.inf

    def test_value_must_be_finite(self):
        with pytest.raises(ConfigurationError):
            ShillBid(float("inf"))

    def test_all_infinite_untouched(self):
        v = np.full(3, -np.inf)
        assert np.all(ShillBid(1.0).report(v) == -np.inf)


class TestReportContract:
    def test_all_infinite_input(self):
        v = np.full(3, -np.inf)
        out = OverProjection(2.0).report(v)
        assert np.all(out == -np.inf)

    def test_shape_preserved(self):
        for s in (TruthfulStrategy(), OverProjection(2.0), UnderProjection(0.5)):
            assert s.report(vec()).shape == vec().shape

    def test_input_not_mutated(self):
        v = vec()
        OverProjection(2.0).report(v)
        assert np.array_equal(v, vec())
