"""Tests for the Theorem 3 (VCG ≡ second price) identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.payments import second_best_payment
from repro.core.theorem3 import (
    clarke_pivot_h,
    vcg_payment,
    verify_theorem3,
)

bids = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=15,
)


class TestIdentity:
    @given(bids)
    @settings(max_examples=150, deadline=None)
    def test_vcg_equals_second_price(self, reported):
        winner = int(np.argmax(reported))
        assert vcg_payment(reported, winner) == pytest.approx(
            second_best_payment(reported, winner)
        )

    @given(bids)
    @settings(max_examples=100, deadline=None)
    def test_verify_helper(self, reported):
        assert verify_theorem3(reported, int(np.argmax(reported)))

    def test_on_real_mechanism_rounds(self, tiny_instance):
        from repro.core.agt_ram import run_agt_ram

        res = run_agt_ram(tiny_instance, record_audit=True)
        for rec in res.extra["audit"].rounds:
            if rec.winner >= 0:
                assert verify_theorem3(rec.reported, rec.winner)


class TestClarkePivot:
    def test_basic(self):
        assert clarke_pivot_h([3.0, 9.0, 5.0], 1) == 5.0

    def test_sole_agent(self):
        assert clarke_pivot_h([7.0], 0) == 0.0

    def test_ignores_own_bid(self):
        assert clarke_pivot_h([3.0, 9.0, 5.0], 1) == clarke_pivot_h(
            [3.0, 1e9, 5.0], 1
        )

    def test_reserve_floor(self):
        assert clarke_pivot_h([-5.0, 4.0], 1) == 0.0

    def test_infinite_competitors_ignored(self):
        assert clarke_pivot_h([-np.inf, 4.0, 2.0], 1) == 2.0

    def test_bad_index(self):
        with pytest.raises(IndexError):
            clarke_pivot_h([1.0], 5)
        with pytest.raises(IndexError):
            vcg_payment([1.0], 5)
