"""Documentation consistency checks.

DESIGN.md's per-experiment index and the docs must reference benchmark
files and modules that actually exist; dead references are the fastest
way for a reproduction repo to lose credibility.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignReferences:
    def test_referenced_benchmarks_exist(self):
        text = read("DESIGN.md")
        for ref in set(re.findall(r"benchmarks/(bench_\w+\.py)", text)):
            assert (ROOT / "benchmarks" / ref).exists(), ref

    def test_referenced_test_files_exist(self):
        text = read("DESIGN.md")
        for ref in set(re.findall(r"test_\w+\.py", text)):
            assert (ROOT / "tests" / ref).exists(), ref

    def test_no_mismatch_banner(self):
        # DESIGN.md must affirm the paper text matched (no title collision).
        assert "No title collision" in read("DESIGN.md")


class TestPaperMappingReferences:
    def test_referenced_modules_import(self):
        text = read("docs/paper_mapping.md")
        for mod in set(re.findall(r"`(repro(?:\.\w+)+)`", text)):
            # Entries may be module paths or module.attr paths.
            parts = mod.split(".")
            for depth in range(len(parts), 1, -1):
                try:
                    m = importlib.import_module(".".join(parts[:depth]))
                    break
                except ModuleNotFoundError:
                    continue
            else:
                pytest.fail(f"paper_mapping references unimportable {mod}")
            for attr in parts[depth:]:
                assert hasattr(m, attr), f"{mod} missing attribute {attr}"


class TestExperimentsReferences:
    def test_referenced_benchmarks_exist(self):
        text = read("EXPERIMENTS.md")
        for ref in set(re.findall(r"bench_\w+\.py", text)):
            assert (ROOT / "benchmarks" / ref).exists(), ref

    def test_referenced_tests_exist(self):
        text = read("EXPERIMENTS.md")
        for ref in set(re.findall(r"test_\w+\.py", text)):
            assert (ROOT / "tests" / ref).exists(), ref


class TestReadmeReferences:
    def test_example_commands_exist(self):
        text = read("README.md")
        for ref in set(re.findall(r"examples/(\w+\.py)", text)):
            assert (ROOT / "examples" / ref).exists(), ref

    def test_documented_packages_import(self):
        text = read("README.md")
        for mod in set(re.findall(r"`(repro\.\w+)`", text)):
            importlib.import_module(mod)
