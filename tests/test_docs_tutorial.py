"""The tutorial's code blocks must actually run.

Extracts every ```python fenced block from docs/tutorial.md and
executes them in one shared namespace, in order — documentation that
drifts from the API fails here.
"""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "tutorial.md"


def python_blocks() -> list[str]:
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestTutorial:
    def test_tutorial_exists_with_blocks(self):
        blocks = python_blocks()
        assert len(blocks) >= 6

    def test_blocks_execute_in_order(self):
        namespace: dict = {}
        for i, block in enumerate(python_blocks()):
            try:
                exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"tutorial block {i} failed: {exc}\n{block}")
        # The walkthrough's key artifacts exist and are sane.
        assert namespace["result"].savings_percent > 0
        assert len(namespace["outcomes"]) == 8
