"""Tests for local CoR (Eq. 5) and global ΔOTC benefits."""

import numpy as np
import pytest

from repro.drp.benefit import (
    BenefitEngine,
    global_benefit,
    global_benefit_column,
    local_benefit_matrix,
)
from repro.drp.cost import total_otc
from repro.drp.state import ReplicationState


class TestLocalBenefit:
    def test_hand_computed(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        engine = BenefitEngine(line_instance, st)
        # Server 2, object 0: r=6 at d=2; writes of others W-w = 1; c(P,2)=2
        # b = 6*1*2 - 1*2*1 = 10
        assert engine.local_benefit(2, 0) == pytest.approx(10.0)
        # Server 1, object 0: r=2 at d=1; b = 2 - 1*1 = 1
        assert engine.local_benefit(1, 0) == pytest.approx(1.0)

    def test_ineligible_cells_masked(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        m = local_benefit_matrix(line_instance, st)
        assert m[0, 0] == -np.inf  # primary host
        assert np.isfinite(m[1, 0])

    def test_capacity_masks(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        engine = BenefitEngine(line_instance, st)
        st.add_replica(1, 0)
        st.add_replica(1, 1)
        engine.refresh_server(1)
        assert not np.isfinite(engine.matrix[1]).any()

    def test_local_is_lower_bound_on_global(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        engine = BenefitEngine(tiny_instance, st)
        for i in range(tiny_instance.n_servers):
            for k in range(0, tiny_instance.n_objects, 7):
                if np.isfinite(engine.matrix[i, k]):
                    g = global_benefit(tiny_instance, st, i, k)
                    assert g >= engine.matrix[i, k] - 1e-9

    def test_incremental_matches_fresh(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        engine = BenefitEngine(tiny_instance, st)
        rng = np.random.default_rng(1)
        for _ in range(15):
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if st.can_host(i, k):
                st.add_replica(i, k)
                engine.notify_allocation(i, k)
        fresh = local_benefit_matrix(tiny_instance, st)
        assert np.array_equal(engine.matrix, fresh)

    def test_best_per_server(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        engine = BenefitEngine(line_instance, st)
        vals, objs = engine.best_per_server()
        assert vals[2] == pytest.approx(10.0)
        assert objs[2] == 0

    def test_foreign_state_rejected(self, line_instance, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        with pytest.raises(ValueError):
            BenefitEngine(line_instance, st)


class TestGlobalBenefit:
    def test_equals_exact_delta_otc(self, tiny_instance, rng):
        st = ReplicationState.primaries_only(tiny_instance)
        checked = 0
        while checked < 25:
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if not st.can_host(i, k):
                continue
            g = global_benefit(tiny_instance, st, i, k)
            before = total_otc(st)
            probe = st.copy()
            probe.add_replica(i, k)
            assert before - total_otc(probe) == pytest.approx(g, rel=1e-9, abs=1e-7)
            # Occasionally commit so deltas are tested on evolving schemes.
            if checked % 3 == 0:
                st = probe
            checked += 1

    def test_column_matches_scalar(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        for k in range(0, tiny_instance.n_objects, 11):
            col = global_benefit_column(tiny_instance, st, k)
            for i in range(tiny_instance.n_servers):
                if np.isfinite(col[i]):
                    assert col[i] == pytest.approx(
                        global_benefit(tiny_instance, st, i, k)
                    )

    def test_column_masks_ineligible(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        col = global_benefit_column(line_instance, st, 0)
        assert col[0] == -np.inf  # primary
        assert np.isfinite(col[1]) and np.isfinite(col[2])

    def test_hand_computed(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        # Replica of obj 0 at server 2: read gains 6*2 (server 2 local)
        # + server 1 unchanged (c(1,2)=1 == current d=1) -> 12.
        # Update cost: (W-w)=1 writes over c(P,2)=2 -> 2.  g = 10.
        assert global_benefit(line_instance, st, 2, 0) == pytest.approx(10.0)

    def test_can_be_negative(self, write_heavy_instance):
        st = ReplicationState.primaries_only(write_heavy_instance)
        cols = [
            global_benefit_column(write_heavy_instance, st, k)
            for k in range(write_heavy_instance.n_objects)
        ]
        finite = np.concatenate([c[np.isfinite(c)] for c in cols])
        assert (finite < 0).any()
