"""Tests for the OTC cost model (Equations 1-4)."""

import numpy as np
import pytest

from repro.drp.cost import (
    otc_breakdown,
    otc_of_matrix,
    primary_only_otc,
    total_otc,
)
from repro.drp.state import ReplicationState


class TestPrimaryOnlyOTC:
    def test_hand_computed(self, line_instance):
        # reads: obj0: r=[0,2,6] at dist [0,1,2] -> 0+2+12 = 14 (o=1)
        #        obj1: r=[4,2,0] at dist [2,1,0] -> 8+2+0 = 10
        # writes: obj0: w=[1,0,0] at dist [0,..] -> 0
        #         obj1: w=[0,1,1] at dist to P=2: [.,1,0] -> 1
        expected = 14 + 10 + 0 + 1
        assert primary_only_otc(line_instance) == pytest.approx(expected)

    def test_equals_state_total(self, line_instance, tiny_instance):
        for inst in (line_instance, tiny_instance):
            st = ReplicationState.primaries_only(inst)
            assert total_otc(st) == pytest.approx(primary_only_otc(inst))

    def test_nonnegative(self, tiny_instance):
        assert primary_only_otc(tiny_instance) >= 0


class TestOTCBreakdown:
    def test_components_sum(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        b = otc_breakdown(st)
        assert b.total == pytest.approx(b.read_cost + b.write_cost)

    def test_replica_zeroes_local_reads(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        before = otc_breakdown(st)
        st.add_replica(2, 0)  # server 2's 6 reads at dist 2 -> 0
        after = otc_breakdown(st)
        assert after.read_cost == pytest.approx(before.read_cost - 12.0)

    def test_replica_adds_broadcast_cost(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        before = otc_breakdown(st)
        # Object 0 has 1 write from server 0 (the primary itself).
        # Adding a replica at server 2 makes that write broadcast over
        # c(P_0=0, 2) = 2, so write cost grows by 1*1*2 = 2.
        st.add_replica(2, 0)
        after = otc_breakdown(st)
        assert after.write_cost == pytest.approx(before.write_cost + 2.0)

    def test_writer_own_copy_no_selfbroadcast(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        # Object 1 (primary at 2) written by servers 1 and 2.
        # Give server 1 a replica: its own write should NOT pay the
        # broadcast leg back to itself.
        st.add_replica(1, 1)
        b = otc_breakdown(st)
        # writes obj1: server1: c(1,P=2)=1 + broadcast to {1}\{1} = 0 -> 1
        #              server2(=P): c=0 + broadcast to {1} = c(2,1)=1 -> 1
        #        obj0: only writer is its own primary -> 0
        # reads obj1: server0 dist min(c(0,2)=2, c(0,1)=1)=1, r=4 -> 4
        # reads obj0: server1 r=2 at dist 1 -> 2; server2 r=6 at dist 2 -> 12
        assert b.write_cost == pytest.approx(2.0)
        assert b.read_cost == pytest.approx(4.0 + 14.0)

    def test_object_size_scales_cost(self, line_instance):
        # Doubling all sizes doubles OTC (per-unit costs scale linearly).
        from repro.drp.instance import DRPInstance

        inst2 = DRPInstance(
            cost=line_instance.cost,
            reads=line_instance.reads,
            writes=line_instance.writes,
            sizes=line_instance.sizes * 2,
            capacities=line_instance.capacities * 2,
            primaries=line_instance.primaries,
        )
        assert primary_only_otc(inst2) == pytest.approx(
            2 * primary_only_otc(line_instance)
        )


class TestOTCOfMatrix:
    def test_matches_state_computation(self, tiny_instance, rng):
        st = ReplicationState.primaries_only(tiny_instance)
        for _ in range(25):
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if st.can_host(i, k):
                st.add_replica(i, k)
        assert otc_of_matrix(tiny_instance, st.x) == pytest.approx(total_otc(st))

    def test_primaries_only_matrix(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        assert otc_of_matrix(tiny_instance, st.x) == pytest.approx(
            primary_only_otc(tiny_instance)
        )

    def test_missing_primary_rejected(self, line_instance):
        x = np.zeros((3, 2), dtype=bool)
        with pytest.raises(ValueError):
            otc_of_matrix(line_instance, x)

    def test_wrong_shape_rejected(self, line_instance):
        with pytest.raises(ValueError):
            otc_of_matrix(line_instance, np.zeros((5, 5), dtype=bool))

    def test_full_replication_kills_read_cost(self, line_instance):
        x = np.ones((3, 2), dtype=bool)
        st = ReplicationState.from_matrix(line_instance, x)
        b = otc_breakdown(st)
        assert b.read_cost == 0.0
        assert b.write_cost > 0.0
