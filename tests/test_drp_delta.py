"""Tests for the vectorized delta-maintained engine (repro.drp.delta).

The engine's contract is *bit-for-bit* agreement with the naive
full-matrix :class:`~repro.drp.benefit.BenefitEngine` — same dominant
reports (values AND argmax tie-breaks), same winners, same second
prices, same event stream.  Everything here asserts exact equality, not
approximate closeness.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.drp.delta as delta_mod
from repro.core.agt_ram import run_agt_ram
from repro.core.strategies import OverProjection, UnderProjection
from repro.drp.benefit import NEG_INF, BenefitEngine, local_benefit_matrix
from repro.drp.delta import (
    ENGINE_NAMES,
    DeltaBenefitEngine,
    make_local_engine,
    numpy_support_error,
    resolve_engine,
)
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.obs import events as ev


def _fresh_bests(instance, state):
    """Reference dominant reports from a fresh naive full sweep."""
    matrix = local_benefit_matrix(instance, state)
    objs = matrix.argmax(axis=1)
    vals = matrix[np.arange(matrix.shape[0]), objs]
    return vals, objs


def _assert_bests_exact(engine, instance, state):
    vals, objs = engine.best_per_server()
    ref_vals, ref_objs = _fresh_bests(instance, state)
    # Exact: same argmax index (numpy first-index tie-break) and the
    # identical IEEE-754 value, -inf included.
    np.testing.assert_array_equal(objs, ref_objs)
    np.testing.assert_array_equal(vals, ref_vals)


class TestResolveEngine:
    def test_names_exposed(self):
        assert ENGINE_NAMES == ("auto", "naive", "vectorized")

    def test_auto_prefers_vectorized(self):
        assert resolve_engine("auto") == "vectorized"

    def test_explicit_names_pass_through(self):
        assert resolve_engine("naive") == "naive"
        assert resolve_engine("vectorized") == "vectorized"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            resolve_engine("turbo")

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr(delta_mod, "HAVE_NUMPY", False)
        assert resolve_engine("auto") == "naive"

    def test_explicit_vectorized_without_numpy_is_clear_error(
        self, monkeypatch
    ):
        monkeypatch.setattr(delta_mod, "HAVE_NUMPY", False)
        with pytest.raises(ConfigurationError, match="numpy >="):
            resolve_engine("vectorized")
        # A ConfigurationError, never a bare ImportError traceback, and
        # the message tells the user both remedies.
        msg = numpy_support_error()
        assert "pyproject.toml" in msg
        assert "naive" in msg

    def test_engine_ctor_guarded(self, monkeypatch, tiny_instance):
        monkeypatch.setattr(delta_mod, "HAVE_NUMPY", False)
        st_ = ReplicationState.primaries_only(tiny_instance)
        with pytest.raises(ConfigurationError, match="numpy >="):
            DeltaBenefitEngine(tiny_instance, st_)

    def test_make_local_engine_types(self, tiny_instance):
        st_ = ReplicationState.primaries_only(tiny_instance)
        assert isinstance(
            make_local_engine("vectorized", tiny_instance, st_),
            DeltaBenefitEngine,
        )
        assert isinstance(
            make_local_engine("naive", tiny_instance, st_), BenefitEngine
        )

    def test_state_must_belong_to_instance(self, tiny_instance, line_instance):
        st_ = ReplicationState.primaries_only(line_instance)
        with pytest.raises(ValueError, match="belong"):
            DeltaBenefitEngine(tiny_instance, st_)


class TestDeltaMatchesNaive:
    def test_initial_bests_match_full_sweep(self, tiny_instance):
        state = ReplicationState.primaries_only(tiny_instance)
        engine = DeltaBenefitEngine(tiny_instance, state)
        _assert_bests_exact(engine, tiny_instance, state)

    def test_bests_exact_through_greedy_run(self, tiny_instance):
        """Delta maintenance stays exact along the mechanism's own
        trajectory (allocate the current best until exhaustion)."""
        state = ReplicationState.primaries_only(tiny_instance)
        engine = DeltaBenefitEngine(tiny_instance, state)
        for _ in range(200):
            vals, objs = engine.best_per_server()
            winner = int(vals.argmax())
            if not np.isfinite(vals[winner]) or vals[winner] <= 0.0:
                break
            obj = int(objs[winner])
            state.add_replica(winner, obj)
            engine.notify_allocation(winner, obj)
            _assert_bests_exact(engine, tiny_instance, state)

    def test_bests_exact_through_adversarial_allocations(self, tiny_instance):
        """Off-trajectory allocations (never the argmax) — the dirty-set
        argument must hold for arbitrary feasible allocation orders."""
        state = ReplicationState.primaries_only(tiny_instance)
        engine = DeltaBenefitEngine(tiny_instance, state)
        rng = np.random.default_rng(7)
        placed = 0
        for _ in range(300):
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if not state.can_host(i, k):
                continue
            state.add_replica(i, k)
            engine.notify_allocation(i, k)
            placed += 1
            _assert_bests_exact(engine, tiny_instance, state)
        assert placed > 10

    def test_views_match_naive(self, tiny_instance):
        state = ReplicationState.primaries_only(tiny_instance)
        naive = BenefitEngine(tiny_instance, state)
        delta = DeltaBenefitEngine(tiny_instance, state)
        np.testing.assert_array_equal(delta.matrix, naive.matrix)
        for i in range(0, tiny_instance.n_servers, 3):
            np.testing.assert_array_equal(delta.row(i), naive.row(i))
            for k in range(0, tiny_instance.n_objects, 11):
                assert delta.value_at(i, k) == naive.value_at(i, k)
        servers = np.arange(tiny_instance.n_servers)
        np.testing.assert_array_equal(
            delta.eligible_counts(servers), naive.eligible_counts(servers)
        )

    def test_full_server_goes_ineligible(self, line_instance):
        state = ReplicationState.primaries_only(line_instance)
        engine = DeltaBenefitEngine(line_instance, state)
        state.add_replica(1, 0)
        engine.notify_allocation(1, 0)
        state.add_replica(1, 1)
        engine.notify_allocation(1, 1)
        # refresh_server on an already-consistent row is a no-op.
        engine.refresh_server(1)
        vals, _ = engine.best_per_server()
        assert vals[1] == NEG_INF  # full server has no eligible object
        _assert_bests_exact(engine, line_instance, state)

    def test_resync_rebuilds_from_live_state(self, tiny_instance):
        """Mutate the state behind the engine's back (the lazy-protocol
        situation), then resync — the caches must match a fresh build."""
        state = ReplicationState.primaries_only(tiny_instance)
        engine = DeltaBenefitEngine(tiny_instance, state)
        rng = np.random.default_rng(3)
        for _ in range(10):
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if state.can_host(i, k):
                state.add_replica(i, k)  # no notify_allocation on purpose
        engine.resync()
        _assert_bests_exact(engine, tiny_instance, state)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        moves=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),
                st.integers(min_value=0, max_value=39),
            ),
            max_size=40,
        ),
    )
    def test_property_delta_equals_full_sweep(self, seed, moves):
        """Property: for any instance and any feasible allocation
        sequence, the delta-maintained bests equal a fresh full sweep."""
        instance = paper_instance(
            ExperimentConfig(
                n_servers=12,
                n_objects=40,
                total_requests=4_000,
                seed=seed,
                name="prop",
            )
        )
        state = ReplicationState.primaries_only(instance)
        engine = DeltaBenefitEngine(instance, state)
        for i, k in moves:
            if not state.can_host(i, k):
                continue
            state.add_replica(i, k)
            engine.notify_allocation(i, k)
        _assert_bests_exact(engine, instance, state)


def _recorded(instance, engine, **kwargs):
    sink = ev.RecordingSink()
    with ev.logical_time(), ev.capture(sink):
        result = run_agt_ram(instance, engine=engine, **kwargs)
    return result, [ev.asdict(e) for e in sink.events]


class TestRunEquivalence:
    def test_same_seed_event_log_byte_identity(self, tiny_instance):
        ref, ref_events = _recorded(tiny_instance, "naive")
        cand, cand_events = _recorded(tiny_instance, "vectorized")
        ref_bytes = "\n".join(json.dumps(e, sort_keys=True) for e in ref_events)
        cand_bytes = "\n".join(
            json.dumps(e, sort_keys=True) for e in cand_events
        )
        assert ref_bytes == cand_bytes
        assert ref.rounds == cand.rounds
        assert ref.otc == cand.otc

    def test_placements_payments_utilities_identical(self, tiny_instance):
        ref = run_agt_ram(tiny_instance, engine="naive")
        cand = run_agt_ram(tiny_instance, engine="vectorized")
        np.testing.assert_array_equal(ref.state.x, cand.state.x)
        np.testing.assert_array_equal(
            ref.extra["payments"], cand.extra["payments"]
        )
        np.testing.assert_array_equal(
            ref.extra["utilities"], cand.extra["utilities"]
        )
        assert cand.extra["engine"] == "vectorized"
        assert ref.extra["engine"] == "naive"

    @pytest.mark.parametrize("batch_size", [2, 4])
    def test_batch_mode_identical(self, tiny_instance, batch_size):
        from repro.core.agt_ram import AGTRam

        a = AGTRam(engine="naive", batch_size=batch_size).run(tiny_instance)
        b = AGTRam(engine="vectorized", batch_size=batch_size).run(
            tiny_instance
        )
        np.testing.assert_array_equal(a.state.x, b.state.x)
        assert a.otc == b.otc
        assert a.rounds == b.rounds

    @pytest.mark.parametrize(
        "strategy", [OverProjection(1.6), UnderProjection(0.4)]
    )
    def test_strategic_agents_identical(self, tiny_instance, strategy):
        a = run_agt_ram(
            tiny_instance, engine="naive", strategies={3: strategy}
        )
        b = run_agt_ram(
            tiny_instance, engine="vectorized", strategies={3: strategy}
        )
        np.testing.assert_array_equal(a.state.x, b.state.x)
        np.testing.assert_array_equal(
            a.extra["payments"], b.extra["payments"]
        )
        assert a.otc == b.otc

    def test_global_valuation_rejects_vectorized(self, tiny_instance):
        with pytest.raises(ConfigurationError, match="global"):
            run_agt_ram(
                tiny_instance, engine="vectorized", valuation="global"
            )

    def test_audit_trail_identical(self, tiny_instance):
        a = run_agt_ram(tiny_instance, engine="naive", record_audit=True)
        b = run_agt_ram(tiny_instance, engine="vectorized", record_audit=True)
        assert len(a.extra["audit"]) == len(b.extra["audit"])
        for ra, rb in zip(a.extra["audit"].rounds, b.extra["audit"].rounds):
            assert ra.winner == rb.winner
            assert ra.obj == rb.obj
            assert ra.payment == rb.payment
            np.testing.assert_array_equal(ra.reported, rb.reported)


class TestSimulatorEngine:
    def test_vectorized_requires_eager_protocol(self, tiny_instance):
        from repro.runtime.simulator import SemiDistributedSimulator

        with pytest.raises(ConfigurationError, match="eager"):
            SemiDistributedSimulator(engine="vectorized", nn_update_period=2)

    def test_simulator_engines_identical(self, tiny_instance):
        from repro.runtime.simulator import SemiDistributedSimulator

        a = SemiDistributedSimulator(engine="naive").run(tiny_instance)
        b = SemiDistributedSimulator(engine="vectorized").run(tiny_instance)
        np.testing.assert_array_equal(a.state.x, b.state.x)
        assert a.otc == b.otc
        assert a.rounds == b.rounds
        sa, sb = a.extra["metrics"].summary(), b.extra["metrics"].summary()
        assert sa["messages"] == sb["messages"]
        assert sa["bytes"] == sb["bytes"]
        assert b.extra["engine"] == "vectorized"

    def test_lazy_protocol_still_works_with_naive(self, tiny_instance):
        from repro.runtime.simulator import SemiDistributedSimulator

        result = SemiDistributedSimulator(
            engine="naive", nn_update_period=3
        ).run(tiny_instance)
        assert result.rounds > 0


class TestEquivalenceModule:
    def test_compare_engines_reports_identity(self, tiny_instance):
        from repro.obs.equivalence import compare_engines, format_comparison

        cmp = compare_engines(tiny_instance, repeats=1)
        assert cmp.identical
        assert cmp.audit_ok
        assert cmp.mismatches == []
        assert cmp.events_compared > 0
        assert cmp.speedup > 0
        text = format_comparison(cmp)
        assert "identity : OK" in text
        assert "audit    : OK" in text
        d = cmp.to_dict()
        assert d["identical"] is True
        assert d["n_servers"] == tiny_instance.n_servers

    def test_compare_engines_at_scale_tiny(self):
        from repro.obs.equivalence import compare_engines_at_scale

        cmp = compare_engines_at_scale("tiny", repeats=1)
        assert cmp.scale == "tiny"
        assert cmp.identical and cmp.audit_ok

    def test_repeats_validated(self, tiny_instance):
        from repro.obs.equivalence import compare_engines

        with pytest.raises(ValueError, match="repeats"):
            compare_engines(tiny_instance, repeats=0)
