"""Tests for the incrementally-maintained GlobalBenefitEngine."""

import numpy as np
import pytest

from repro.drp.benefit import global_benefit_column
from repro.drp.global_engine import GlobalBenefitEngine
from repro.drp.state import ReplicationState


def fresh_matrix(instance, state):
    return np.stack(
        [
            global_benefit_column(instance, state, k)
            for k in range(instance.n_objects)
        ],
        axis=1,
    )


class TestGlobalBenefitEngine:
    def test_initial_matrix_exact(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        engine = GlobalBenefitEngine(tiny_instance, st)
        assert np.array_equal(engine.matrix, fresh_matrix(tiny_instance, st))

    def test_incremental_matches_fresh(self, tiny_instance, rng):
        st = ReplicationState.primaries_only(tiny_instance)
        engine = GlobalBenefitEngine(tiny_instance, st)
        added = 0
        while added < 12:
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if st.can_host(i, k):
                st.add_replica(i, k)
                engine.notify_allocation(i, k)
                added += 1
        fresh = fresh_matrix(tiny_instance, st)
        # Incremental masking may keep stale *values* only on cells that
        # became infeasible; feasible cells must match exactly.
        feasible = np.isfinite(fresh)
        assert np.allclose(engine.matrix[feasible], fresh[feasible])
        assert not np.isfinite(engine.matrix[~feasible & ~np.isfinite(engine.matrix)]).any()

    def test_best_cell(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        engine = GlobalBenefitEngine(line_instance, st)
        i, k, g = engine.best_cell()
        assert (i, k) == (2, 0)
        assert g == pytest.approx(10.0)

    def test_best_per_server_consistent(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        engine = GlobalBenefitEngine(tiny_instance, st)
        vals, objs = engine.best_per_server()
        for i in range(tiny_instance.n_servers):
            assert vals[i] == engine.matrix[i, objs[i]]

    def test_foreign_state_rejected(self, line_instance, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        with pytest.raises(ValueError):
            GlobalBenefitEngine(line_instance, st)
