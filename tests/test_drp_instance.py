"""Tests for repro.drp.instance."""

import numpy as np
import pytest

from repro.drp.instance import DRPInstance, build_instance
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.topology import random_graph
from repro.workload.synthetic import synthesize_workload


def valid_kwargs():
    cost = np.array([[0.0, 1.0], [1.0, 0.0]])
    return dict(
        cost=cost,
        reads=np.array([[1, 2], [3, 4]]),
        writes=np.array([[0, 1], [1, 0]]),
        sizes=np.array([1, 2]),
        capacities=np.array([3, 3]),
        primaries=np.array([0, 1]),
    )


class TestDRPInstanceValidation:
    def test_valid(self):
        inst = DRPInstance(**valid_kwargs())
        assert inst.n_servers == 2 and inst.n_objects == 2

    def test_non_square_cost(self):
        kw = valid_kwargs()
        kw["cost"] = np.zeros((2, 3))
        with pytest.raises(ConfigurationError):
            DRPInstance(**kw)

    def test_asymmetric_cost(self):
        kw = valid_kwargs()
        kw["cost"] = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ConfigurationError, match="symmetric"):
            DRPInstance(**kw)

    def test_nonzero_diagonal(self):
        kw = valid_kwargs()
        kw["cost"] = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ConfigurationError, match="diagonal"):
            DRPInstance(**kw)

    def test_negative_cost(self):
        kw = valid_kwargs()
        kw["cost"] = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ConfigurationError):
            DRPInstance(**kw)

    def test_infinite_cost(self):
        kw = valid_kwargs()
        kw["cost"] = np.array([[0.0, np.inf], [np.inf, 0.0]])
        with pytest.raises(ConfigurationError):
            DRPInstance(**kw)

    def test_negative_reads(self):
        kw = valid_kwargs()
        kw["reads"] = np.array([[-1, 0], [0, 0]])
        with pytest.raises(ConfigurationError):
            DRPInstance(**kw)

    def test_nan_reads_named_by_index(self):
        kw = valid_kwargs()
        kw["reads"] = np.array([[1.0, np.nan], [3.0, 4.0]])
        with pytest.raises(ConfigurationError, match=r"read.*\(0, 1\)"):
            DRPInstance(**kw)

    def test_nan_writes_rejected(self):
        kw = valid_kwargs()
        kw["writes"] = np.array([[0.0, 1.0], [np.nan, 0.0]])
        with pytest.raises(ConfigurationError, match="write"):
            DRPInstance(**kw)

    def test_infinite_cost_names_entry(self):
        kw = valid_kwargs()
        kw["cost"] = np.array([[0.0, np.inf], [np.inf, 0.0]])
        with pytest.raises(ConfigurationError, match=r"link cost.*\(0, 1\)"):
            DRPInstance(**kw)

    def test_object_exceeding_every_capacity(self):
        kw = valid_kwargs()
        kw["sizes"] = np.array([1, 99])
        with pytest.raises(
            InfeasibleInstanceError, match="exceeds every server capacity"
        ):
            DRPInstance(**kw)

    def test_zero_size_object(self):
        kw = valid_kwargs()
        kw["sizes"] = np.array([0, 1])
        with pytest.raises(ConfigurationError):
            DRPInstance(**kw)

    def test_primary_out_of_range(self):
        kw = valid_kwargs()
        kw["primaries"] = np.array([0, 5])
        with pytest.raises(ConfigurationError):
            DRPInstance(**kw)

    def test_primary_overload(self):
        kw = valid_kwargs()
        kw["primaries"] = np.array([0, 0])  # server 0 must hold sizes 1+2=3
        kw["capacities"] = np.array([2, 3])
        with pytest.raises(InfeasibleInstanceError, match="server 0"):
            DRPInstance(**kw)

    def test_shape_mismatch_reads(self):
        kw = valid_kwargs()
        kw["reads"] = np.zeros((3, 2), dtype=int)
        with pytest.raises(ConfigurationError):
            DRPInstance(**kw)


class TestDerivedViews:
    def test_primary_load(self):
        inst = DRPInstance(**valid_kwargs())
        assert np.array_equal(inst.primary_load, [1, 2])

    def test_replica_headroom(self):
        inst = DRPInstance(**valid_kwargs())
        assert np.array_equal(inst.replica_headroom(), [2, 1])

    def test_primary_cost_rows(self):
        inst = DRPInstance(**valid_kwargs())
        cp = inst.primary_cost_rows()
        assert cp.shape == (2, 2)
        assert cp[0, 1] == 1.0  # c(P_0=0, server 1)
        assert cp[1, 1] == 0.0  # c(P_1=1, server 1)

    def test_total_write_counts(self):
        inst = DRPInstance(**valid_kwargs())
        assert np.array_equal(inst.total_write_counts(), [1, 1])

    def test_total_requests(self):
        assert DRPInstance(**valid_kwargs()).total_requests() == 12


class TestBuildInstance:
    def test_basic(self):
        topo = random_graph(12, 0.5, seed=0)
        w = synthesize_workload(12, 30, total_requests=4000, seed=1)
        inst = build_instance(topo, w, capacity_fraction=0.2, seed=2)
        assert inst.n_servers == 12 and inst.n_objects == 30

    def test_feasible_by_construction(self):
        topo = random_graph(10, 0.4, seed=3)
        w = synthesize_workload(10, 25, total_requests=2000, seed=4)
        # Even a zero capacity_fraction instance is feasible (primaries fit).
        inst = build_instance(topo, w, capacity_fraction=0.0, seed=5)
        assert (inst.capacities >= inst.primary_load).all()

    def test_capacity_fraction_scales_headroom(self):
        topo = random_graph(10, 0.4, seed=6)
        w = synthesize_workload(10, 25, total_requests=2000, seed=7)
        lo = build_instance(topo, w, capacity_fraction=0.1, seed=8)
        hi = build_instance(topo, w, capacity_fraction=0.4, seed=8)
        assert hi.replica_headroom().sum() > 2 * lo.replica_headroom().sum()

    def test_explicit_primaries(self):
        topo = random_graph(8, 0.5, seed=9)
        w = synthesize_workload(8, 16, total_requests=1000, seed=10)
        primaries = np.zeros(16, dtype=int)
        inst = build_instance(topo, w, primaries=primaries, seed=11)
        assert (inst.primaries == 0).all()

    def test_size_mismatch_rejected(self):
        topo = random_graph(8, 0.5, seed=12)
        w = synthesize_workload(9, 16, total_requests=1000, seed=13)
        with pytest.raises(ConfigurationError):
            build_instance(topo, w)

    def test_deterministic(self):
        topo = random_graph(8, 0.5, seed=14)
        w = synthesize_workload(8, 16, total_requests=1000, seed=15)
        a = build_instance(topo, w, seed=16)
        b = build_instance(topo, w, seed=16)
        assert np.array_equal(a.capacities, b.capacities)
        assert np.array_equal(a.primaries, b.primaries)
