"""Analytic verification on a ring topology.

A unit-weight ring of M servers has closed-form shortest paths
(min(|i-j|, M-|i-j|)) — the cost matrix must route "the short way
around", and replica placement on a uniform-demand ring has a clean
symmetric structure worth pinning down.
"""

import numpy as np
import pytest

from repro.core.agt_ram import run_agt_ram
from repro.drp.benefit import global_benefit
from repro.drp.cost import primary_only_otc
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState
from repro.topology import Topology, cost_matrix

M = 8


def ring_topology() -> Topology:
    edges = [(i, (i + 1) % M) for i in range(M)]
    return Topology(n_nodes=M, edges=edges, weights=np.ones(M), name="ring")


def ring_instance(*, reads=5, writes=0) -> DRPInstance:
    c = cost_matrix(ring_topology())
    r = np.full((M, 1), reads)
    w = np.full((M, 1), writes)
    return DRPInstance(
        cost=c,
        reads=r,
        writes=w,
        sizes=np.array([1]),
        capacities=np.full(M, 3),
        primaries=np.array([0]),
        name="ring",
    )


class TestRingCostMatrix:
    def test_shortest_way_around(self):
        c = cost_matrix(ring_topology())
        for i in range(M):
            for j in range(M):
                expected = min(abs(i - j), M - abs(i - j))
                assert c[i, j] == pytest.approx(expected)

    def test_diameter(self):
        c = cost_matrix(ring_topology())
        assert c.max() == pytest.approx(M // 2)


class TestRingPlacement:
    def test_primary_only_otc(self):
        inst = ring_instance(reads=5)
        # Distances from node 0 around an 8-ring: 0,1,2,3,4,3,2,1 = 16.
        assert primary_only_otc(inst) == pytest.approx(5 * 16)

    def test_far_side_replicas_tie_for_best(self):
        inst = ring_instance(reads=5)
        st = ReplicationState.primaries_only(inst)
        gains = {i: global_benefit(inst, st, i, 0) for i in range(1, M)}
        # Hand computation: placing at node 3, 4 (antipode) or 5 each
        # cuts the total ring distance from 16 to 8 — a three-way tie.
        best = max(gains.values())
        assert best == pytest.approx(5 * 8)
        assert {i for i, g in gains.items() if g == pytest.approx(best)} == {
            3, 4, 5
        }
        # Gains fall off symmetrically toward the primary.
        assert gains[1] == gains[7] < gains[2] == gains[6] < gains[3]

    def test_mechanism_respects_symmetry(self):
        inst = ring_instance(reads=5)
        res = run_agt_ram(inst)
        # All copies it placed have positive local benefit; final scheme
        # must serve every node within distance 1 or so.  At minimum the
        # read cost strictly drops and the scheme is feasible.
        assert res.otc < primary_only_otc(inst)

    def test_writes_shrink_the_gain(self):
        read_only = ring_instance(reads=5, writes=0)
        mixed = ring_instance(reads=5, writes=2)
        st_r = ReplicationState.primaries_only(read_only)
        st_m = ReplicationState.primaries_only(mixed)
        g_r = global_benefit(read_only, st_r, M // 2, 0)
        g_m = global_benefit(mixed, st_m, M // 2, 0)
        # Update-keeping cost at the antipode: (W - w_i)*c(0, 4) = 14*4.
        assert g_r - g_m == pytest.approx(2 * (M - 1) * (M // 2))
