"""Tests for savings metric and feasibility checks."""

import numpy as np
import pytest

from repro.drp.cost import primary_only_otc
from repro.drp.feasibility import check_instance, check_state
from repro.drp.instance import DRPInstance
from repro.drp.savings import otc_savings_percent
from repro.drp.state import ReplicationState
from repro.errors import InfeasibleInstanceError


class TestSavings:
    def test_zero_for_primaries_only(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        assert otc_savings_percent(st) == pytest.approx(0.0)

    def test_positive_after_good_replica(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.add_replica(2, 0)  # hand-verified benefit of 10 on baseline 25
        assert otc_savings_percent(st) == pytest.approx(100.0 * 10.0 / 25.0)

    def test_bounded_above(self, read_heavy_instance):
        from repro.baselines.greedy import GreedyPlacer

        res = GreedyPlacer().place(read_heavy_instance)
        assert 0.0 < res.savings_percent < 100.0

    def test_can_go_negative_for_bad_scheme(self, write_heavy_instance):
        # Replicating everything on a write-heavy instance adds broadcast
        # cost exceeding the read savings.
        inst = write_heavy_instance
        x = np.ones((inst.n_servers, inst.n_objects), dtype=bool)
        # Keep it feasible: only fill as capacity allows, column by column.
        x = ReplicationState.primaries_only(inst).x.copy()
        st = ReplicationState.primaries_only(inst)
        for i in range(inst.n_servers):
            for k in range(inst.n_objects):
                if st.can_host(i, k):
                    st.add_replica(i, k)
        assert otc_savings_percent(st) < 0.0

    def test_zero_baseline(self):
        inst = DRPInstance(
            cost=np.zeros((2, 2)),
            reads=np.zeros((2, 2), dtype=int),
            writes=np.zeros((2, 2), dtype=int),
            sizes=np.array([1, 1]),
            capacities=np.array([2, 2]),
            primaries=np.array([0, 1]),
        )
        st = ReplicationState.primaries_only(inst)
        assert otc_savings_percent(st) == 0.0


class TestCheckState:
    def test_fresh_state_passes(self, tiny_instance):
        check_state(ReplicationState.primaries_only(tiny_instance))

    def test_detects_missing_primary(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.x[0, 0] = False
        with pytest.raises(InfeasibleInstanceError, match="primary"):
            check_state(st)

    def test_detects_used_drift(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.used[1] += 1
        with pytest.raises(InfeasibleInstanceError, match="used"):
            check_state(st)

    def test_detects_stale_nn(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.x[1, 0] = True  # bypass add_replica: NN table now stale
        st.used[1] += 1
        with pytest.raises(InfeasibleInstanceError, match="NN"):
            check_state(st)

    def test_detects_overload(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.add_replica(1, 0)
        st.add_replica(1, 1)
        # Force an extra unit through the back door.
        st.x[0, 1] = True
        st.used[0] += 1
        st.nn_dist[0, 1] = 0.0
        st.nn_server[0, 1] = 0
        check_state(st)  # still fine: server 0 has room
        st.used[0] = 99
        with pytest.raises(InfeasibleInstanceError):
            check_state(st)


class TestCheckInstance:
    def test_valid_passes(self, tiny_instance):
        check_instance(tiny_instance)

    def test_detects_corruption(self, line_instance):
        import copy

        inst = copy.deepcopy(line_instance)
        inst.cost[0, 1] = -5.0
        with pytest.raises(Exception):
            check_instance(inst)
