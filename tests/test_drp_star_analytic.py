"""Analytic verification on a hand-solvable star topology.

A hub-and-spoke network admits closed-form optima: every spoke is at
distance d from the hub and 2d from other spokes.  These tests derive
the cost model, benefits, and the mechanism's behaviour by hand and
check the code against the algebra — complementing the random property
tests with exact expected values.
"""

import numpy as np
import pytest

from repro.core.agt_ram import run_agt_ram
from repro.drp.benefit import BenefitEngine, global_benefit
from repro.drp.cost import otc_breakdown, primary_only_otc
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState

D = 3.0  # spoke length
N_SPOKES = 4


def star_instance(*, reads_per_spoke=10, writes_per_spoke=0, size=2):
    """Hub (server 0) + N_SPOKES spokes; one object, primary at the hub.

    Every spoke issues ``reads_per_spoke`` reads and
    ``writes_per_spoke`` writes for the object; the hub issues none.
    """
    m = N_SPOKES + 1
    cost = np.full((m, m), 2 * D)
    cost[0, :] = D
    cost[:, 0] = D
    np.fill_diagonal(cost, 0.0)
    reads = np.zeros((m, 1))
    writes = np.zeros((m, 1))
    reads[1:, 0] = reads_per_spoke
    writes[1:, 0] = writes_per_spoke
    return DRPInstance(
        cost=cost,
        reads=reads,
        writes=writes,
        sizes=np.array([size]),
        capacities=np.full(m, 10 * size),
        primaries=np.array([0]),
        name="star",
    )


class TestReadOnlyStar:
    def test_primary_only_otc(self):
        inst = star_instance()
        # 4 spokes x 10 reads x size 2 x distance D.
        assert primary_only_otc(inst) == pytest.approx(4 * 10 * 2 * D)

    def test_benefit_of_spoke_replica(self):
        inst = star_instance()
        st = ReplicationState.primaries_only(inst)
        # A replica on spoke 1 zeroes only spoke 1's reads (other spokes
        # are 2D away from it but D from the hub): gain = 10*2*D.
        g = global_benefit(inst, st, 1, 0)
        assert g == pytest.approx(10 * 2 * D)
        # And the local view agrees exactly here (no writes).
        engine = BenefitEngine(inst, st)
        assert engine.matrix[1, 0] == pytest.approx(g)

    def test_mechanism_replicates_every_spoke(self):
        inst = star_instance()
        res = run_agt_ram(inst)
        # With zero writes each spoke's replica is worth 60 > 0.
        assert res.replicas_allocated == N_SPOKES
        assert res.otc == pytest.approx(0.0)
        assert res.savings_percent == pytest.approx(100.0)

    def test_payments_are_symmetric_second_prices(self):
        inst = star_instance()
        res = run_agt_ram(inst)
        # All spokes bid 60 each round; each winner pays the (equal)
        # second-best bid of 60 until the last round, where the lone
        # remaining bidder pays 0.
        pays = np.sort(res.extra["payments"][1:])
        assert pays[0] == pytest.approx(0.0)
        assert np.allclose(pays[1:], 10 * 2 * D)


class TestWriteHeavyStar:
    def test_replica_unprofitable_when_writes_dominate(self):
        # Spoke replica gain: r*o*D; keep-current cost: (W - w_i)*o*D
        # with W = 4w.  Unprofitable when 3w > r.
        inst = star_instance(reads_per_spoke=5, writes_per_spoke=2)
        st = ReplicationState.primaries_only(inst)
        g = global_benefit(inst, st, 1, 0)
        assert g == pytest.approx((5 - 3 * 2) * 2 * D)  # negative
        res = run_agt_ram(inst)
        assert res.replicas_allocated == 0

    def test_breakeven_boundary(self):
        # r = 3w exactly: zero benefit, mechanism must not allocate
        # (strictly-positive rule).
        inst = star_instance(reads_per_spoke=6, writes_per_spoke=2)
        st = ReplicationState.primaries_only(inst)
        assert global_benefit(inst, st, 1, 0) == pytest.approx(0.0)
        assert run_agt_ram(inst).replicas_allocated == 0

    def test_write_cost_accounting_after_replica(self):
        inst = star_instance(reads_per_spoke=20, writes_per_spoke=1)
        st = ReplicationState.primaries_only(inst)
        st.add_replica(1, 0)
        b = otc_breakdown(st)
        # Reads: spokes 2-4 still pay 20*2*D each; spoke 1 pays 0.
        assert b.read_cost == pytest.approx(3 * 20 * 2 * D)
        # Writes: each spoke ships to hub (1*2*D each = 4*2*D total);
        # hub broadcasts to spoke 1 for every *other* writer
        # (3 writers x 2 x D); writer 1's own update is not echoed back.
        assert b.write_cost == pytest.approx(4 * 2 * D + 3 * 2 * D)


class TestHubReplicaUseless:
    def test_hub_cannot_improve(self):
        # The hub already holds the primary; no second hub copy exists,
        # and spoke replicas cannot help other spokes (2D > D).  So the
        # OTC after the mechanism equals reads served locally only.
        inst = star_instance(reads_per_spoke=10, writes_per_spoke=1)
        res = run_agt_ram(inst)
        # Spoke replica benefit: (10 - 3)*2*D = 42 > 0 -> all four
        # spokes replicate; remaining OTC is pure write traffic.
        assert res.replicas_allocated == N_SPOKES
        b = otc_breakdown(res.state)
        assert b.read_cost == pytest.approx(0.0)
        # Writes: each of 4 writers ships to hub (2D) and the hub
        # broadcasts to the other 3 spoke replicas (3 x 2D).
        assert b.write_cost == pytest.approx(4 * (2 * D) + 4 * 3 * (2 * D))
