"""Tests for repro.drp.state."""

import numpy as np
import pytest

from repro.drp.feasibility import check_state
from repro.drp.state import ReplicationState
from repro.errors import CapacityError, ConfigurationError


class TestInitialState:
    def test_primaries_present(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        assert st.x[0, 0] and st.x[2, 1]
        assert st.x.sum() == 2

    def test_nn_is_primary(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        assert st.nn_server[1, 0] == 0
        assert st.nn_dist[1, 0] == 1.0
        assert st.nn_dist[0, 1] == 2.0  # server 0 reads obj 1 from server 2

    def test_used_equals_primary_load(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        assert np.array_equal(st.used, line_instance.primary_load)

    def test_invariants(self, line_instance):
        check_state(ReplicationState.primaries_only(line_instance))


class TestAddReplica:
    def test_updates_x_and_capacity(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.add_replica(1, 0)
        assert st.x[1, 0]
        assert st.used[1] == 1
        assert st.n_replicas_added == 1

    def test_nn_relaxation(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.add_replica(2, 0)  # now server 1 is closer to replica at 2? no: c(1,2)=1 == c(1,0)=1
        assert st.nn_dist[2, 0] == 0.0
        assert st.nn_dist[1, 0] == 1.0  # unchanged (tie; keeps earlier server)
        st.add_replica(1, 0)
        assert st.nn_dist[1, 0] == 0.0

    def test_duplicate_rejected(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.add_replica(1, 0)
        with pytest.raises(ConfigurationError):
            st.add_replica(1, 0)

    def test_capacity_enforced(self, line_instance):
        from repro.drp.instance import DRPInstance

        # Same topology but object 1 is huge: it cannot fit anywhere else.
        inst = DRPInstance(
            cost=line_instance.cost,
            reads=line_instance.reads,
            writes=line_instance.writes,
            sizes=np.array([1, 5]),
            capacities=np.array([3, 2, 5]),
            primaries=np.array([0, 2]),
        )
        st = ReplicationState.primaries_only(inst)
        with pytest.raises(CapacityError):
            st.add_replica(1, 1)

    def test_invariants_after_adds(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.add_replica(1, 0)
        st.add_replica(0, 1)
        check_state(st)


class TestQueries:
    def test_replica_set(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.add_replica(1, 0)
        assert np.array_equal(st.replica_set(0), [0, 1])

    def test_replica_counts(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        st.add_replica(1, 0)
        assert np.array_equal(st.replica_counts(), [2, 1])

    def test_total_replicas(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        assert st.total_replicas() == 0
        st.add_replica(1, 1)
        assert st.total_replicas() == 1

    def test_can_host(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        assert st.can_host(1, 0)
        assert not st.can_host(0, 0)  # already the primary
        st.add_replica(1, 0)
        st.add_replica(1, 1)
        assert not st.can_host(1, 0)  # full

    def test_residual(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        assert np.array_equal(st.residual, [2, 2, 2])


class TestFromMatrix:
    def test_roundtrip(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        rng = np.random.default_rng(0)
        for _ in range(20):
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if st.can_host(i, k):
                st.add_replica(i, k)
        rebuilt = ReplicationState.from_matrix(tiny_instance, st.x)
        assert np.array_equal(rebuilt.x, st.x)
        assert np.allclose(rebuilt.nn_dist, st.nn_dist)
        assert np.array_equal(rebuilt.used, st.used)
        check_state(rebuilt)

    def test_missing_primary_rejected(self, line_instance):
        x = np.zeros((3, 2), dtype=bool)
        x[0, 0] = True  # object 1's primary at server 2 missing
        with pytest.raises(ConfigurationError):
            ReplicationState.from_matrix(line_instance, x)

    def test_wrong_shape_rejected(self, line_instance):
        with pytest.raises(ConfigurationError):
            ReplicationState.from_matrix(line_instance, np.zeros((2, 2), dtype=bool))


class TestCopy:
    def test_independent(self, line_instance):
        st = ReplicationState.primaries_only(line_instance)
        dup = st.copy()
        dup.add_replica(1, 0)
        assert not st.x[1, 0]
        assert st.used[1] == 0
        assert dup.x[1, 0]
