"""Tests for instance transforms (partial updates, request scaling)."""

import numpy as np
import pytest

from repro.baselines.greedy import GreedyPlacer
from repro.core.agt_ram import run_agt_ram
from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.state import ReplicationState
from repro.drp.transforms import (
    delta_update_instance,
    read_only_instance,
    scaled_request_instance,
)
from repro.errors import ConfigurationError


class TestDeltaUpdates:
    def test_delta_one_is_identity(self, tiny_instance):
        inst = delta_update_instance(tiny_instance, 1.0)
        assert np.array_equal(inst.writes, tiny_instance.writes)
        assert primary_only_otc(inst) == pytest.approx(
            primary_only_otc(tiny_instance)
        )

    def test_write_cost_scales_exactly(self, tiny_instance):
        from repro.drp.cost import otc_breakdown

        half = delta_update_instance(tiny_instance, 0.5)
        full_state = ReplicationState.primaries_only(tiny_instance)
        half_state = ReplicationState.primaries_only(half)
        b_full = otc_breakdown(full_state)
        b_half = otc_breakdown(half_state)
        assert b_half.read_cost == pytest.approx(b_full.read_cost)
        assert b_half.write_cost == pytest.approx(0.5 * b_full.write_cost)

    def test_smaller_delta_more_replication(self, write_heavy_instance):
        # Partial updates make replication cheaper to maintain, so the
        # mechanism allocates at least as many replicas.
        full = run_agt_ram(write_heavy_instance)
        partial = run_agt_ram(delta_update_instance(write_heavy_instance, 0.1))
        assert partial.replicas_allocated >= full.replicas_allocated

    def test_smaller_delta_higher_savings(self, write_heavy_instance):
        full = GreedyPlacer().place(write_heavy_instance)
        partial = GreedyPlacer().place(
            delta_update_instance(write_heavy_instance, 0.1)
        )
        assert partial.savings_percent >= full.savings_percent - 1e-9

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_bad_delta(self, tiny_instance, bad):
        with pytest.raises(ConfigurationError):
            delta_update_instance(tiny_instance, bad)

    def test_name_tagged(self, tiny_instance):
        assert "delta=0.25" in delta_update_instance(tiny_instance, 0.25).name


class TestScaledRequests:
    def test_savings_invariant(self, read_heavy_instance):
        # Scaling all requests leaves savings-% invariant up to greedy
        # tie-breaks shifting under float rounding of near-equal gains.
        base = GreedyPlacer().place(read_heavy_instance)
        scaled = GreedyPlacer().place(
            scaled_request_instance(read_heavy_instance, 3.0)
        )
        assert scaled.savings_percent == pytest.approx(
            base.savings_percent, abs=0.1
        )

    def test_otc_scales_linearly(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        scaled = scaled_request_instance(tiny_instance, 2.5)
        st2 = ReplicationState.primaries_only(scaled)
        assert total_otc(st2) == pytest.approx(2.5 * total_otc(st))

    def test_bad_factor(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            scaled_request_instance(tiny_instance, 0.0)


class TestReadOnly:
    def test_no_writes(self, tiny_instance):
        inst = read_only_instance(tiny_instance)
        assert inst.writes.sum() == 0

    def test_replication_always_helps(self, tiny_instance):
        # With zero writes every positive-read replica is free to keep,
        # so greedy fills capacity aggressively.
        base = GreedyPlacer().place(tiny_instance)
        ro = GreedyPlacer().place(read_only_instance(tiny_instance))
        assert ro.replicas_allocated >= base.replicas_allocated
        assert ro.savings_percent >= base.savings_percent - 1e-9
