"""Extreme-shape edge cases across the whole pipeline.

Degenerate instances — one server, one object, zero traffic, objects as
big as a server — are where index arithmetic and argmax defaults break;
each case here runs the full mechanism and checks soundness.
"""

import numpy as np
import pytest

from repro.baselines.greedy import GreedyPlacer
from repro.core.agt_ram import run_agt_ram
from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.feasibility import check_state
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState


def make(cost, reads, writes, sizes, capacities, primaries):
    return DRPInstance(
        cost=np.asarray(cost, dtype=float),
        reads=np.asarray(reads),
        writes=np.asarray(writes),
        sizes=np.asarray(sizes),
        capacities=np.asarray(capacities),
        primaries=np.asarray(primaries),
        name="edge",
    )


class TestSingleServer:
    def inst(self):
        return make([[0.0]], [[5]], [[2]], [3], [10], [0])

    def test_otc_zero(self):
        # Everything is local: no transfer cost at all.
        assert primary_only_otc(self.inst()) == 0.0

    def test_mechanism_no_moves(self):
        res = run_agt_ram(self.inst())
        assert res.replicas_allocated == 0
        assert res.savings_percent == 0.0

    def test_greedy_no_moves(self):
        assert GreedyPlacer().place(self.inst()).replicas_allocated == 0


class TestSingleObject:
    def inst(self):
        cost = [[0.0, 2.0], [2.0, 0.0]]
        return make(cost, [[0], [10]], [[0], [0]], [1], [1, 1], [0])

    def test_mechanism_replicates_once(self):
        res = run_agt_ram(self.inst())
        assert res.replicas_allocated == 1
        assert res.state.x[1, 0]
        assert res.otc == 0.0


class TestZeroTraffic:
    def inst(self):
        cost = [[0.0, 1.0], [1.0, 0.0]]
        return make(cost, [[0, 0], [0, 0]], [[0, 0], [0, 0]], [1, 1], [5, 5], [0, 1])

    def test_everything_is_noop(self):
        inst = self.inst()
        assert primary_only_otc(inst) == 0.0
        res = run_agt_ram(inst)
        assert res.replicas_allocated == 0
        assert res.savings_percent == 0.0
        check_state(res.state)


class TestObjectFillsServer:
    def inst(self):
        # Object 1 exactly fills any server's headroom.
        cost = [[0.0, 3.0, 6.0], [3.0, 0.0, 3.0], [6.0, 3.0, 0.0]]
        return make(
            cost,
            [[0, 9], [0, 9], [0, 0]],
            [[0, 0], [0, 0], [0, 0]],
            [1, 4],
            [1, 4, 5],
            [0, 2],
        )

    def test_capacity_exact_fit(self):
        inst = self.inst()
        res = run_agt_ram(inst)
        check_state(res.state)
        # Server 1's headroom (4) exactly fits object 1: it should host.
        assert res.state.x[1, 1]

    def test_object_too_big_is_masked(self):
        inst = self.inst()
        st = ReplicationState.primaries_only(inst)
        # Server 0 has headroom 0: nothing fits.
        from repro.drp.benefit import BenefitEngine

        engine = BenefitEngine(inst, st)
        assert not np.isfinite(engine.matrix[0]).any()


class TestManyObjectsOneHotspot:
    def test_hotspot_monopolizes(self):
        # One server produces all reads; objects should flow to it until
        # capacity runs out, never elsewhere.
        m, n = 4, 8
        cost = np.full((m, m), 5.0)
        np.fill_diagonal(cost, 0.0)
        reads = np.zeros((m, n), dtype=int)
        reads[1, :] = 50
        inst = make(
            cost,
            reads,
            np.zeros((m, n), dtype=int),
            np.ones(n, dtype=int),
            [n, 3, n, n],
            np.zeros(n, dtype=int),
        )
        res = run_agt_ram(inst)
        extra = res.state.x.copy()
        extra[inst.primaries, np.arange(n)] = False
        assert extra[1].sum() == 3  # filled its headroom exactly
        assert extra[0].sum() == extra[2].sum() == extra[3].sum() == 0


class TestIdenticalEverything:
    def test_symmetric_ties_resolve_deterministically(self):
        # Fully symmetric instance: ties everywhere; two runs must agree.
        m, n = 3, 3
        cost = np.full((m, m), 2.0)
        np.fill_diagonal(cost, 0.0)
        inst = make(
            cost,
            np.full((m, n), 4),
            np.ones((m, n), dtype=int),
            np.ones(n, dtype=int),
            np.full(m, 6),
            [0, 1, 2],
        )
        a = run_agt_ram(inst)
        b = run_agt_ram(inst)
        assert np.array_equal(a.state.x, b.state.x)
        check_state(a.state)


class TestFloatRequestMatrices:
    def test_fractional_writes_accepted(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        inst = make(cost, [[0.0, 2.5], [3.5, 0.0]], [[0.25, 0.0], [0.0, 0.75]],
                    [1, 1], [4, 4], [0, 1])
        st = ReplicationState.primaries_only(inst)
        # Reads: 2.5 and 3.5 at distance 1; writes are issued by their
        # own primaries, so they cost nothing.
        assert total_otc(st) == pytest.approx(2.5 + 3.5)
        res = run_agt_ram(inst)
        check_state(res.state)
