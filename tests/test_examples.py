"""Smoke tests: every example script must run to completion.

Examples rot silently when APIs move; running them under pytest keeps
the documentation executable.  Each example is imported and executed in
its own module namespace with argv cleared.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "cdn_scenario.py",
    "truthfulness_demo.py",
    "semi_distributed_protocol.py",
    "hierarchical_regions.py",
    "adaptive_demand.py",
    "convergence_study.py",
    "worldcup_replay.py",
]

SLOW_EXAMPLES = ["as_level_scale.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} missing"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_examples_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)


@pytest.mark.slow
@pytest.mark.parametrize("script", SLOW_EXAMPLES)
def test_slow_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    assert capsys.readouterr().out.strip()
