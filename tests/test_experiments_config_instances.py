"""Tests for experiment configuration and instance builders."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.instances import paper_instance, worldcup_instance


class TestExperimentConfig:
    def test_defaults_valid(self):
        cfg = ExperimentConfig()
        assert cfg.n_servers > 0

    def test_with_override(self):
        cfg = ExperimentConfig().with_(rw_ratio=0.5)
        assert cfg.rw_ratio == 0.5
        assert ExperimentConfig().rw_ratio != 0.5 or True  # original frozen

    def test_frozen(self):
        cfg = ExperimentConfig()
        with pytest.raises(Exception):
            cfg.rw_ratio = 0.1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_servers": 0},
            {"rw_ratio": 1.5},
            {"capacity_fraction": -0.1},
            {"total_requests": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**kwargs)

    def test_scales_increasing(self):
        assert (
            SCALES["tiny"].n_servers
            < SCALES["small"].n_servers
            < SCALES["medium"].n_servers
        )


class TestPaperInstance:
    def test_dimensions(self):
        cfg = ExperimentConfig(n_servers=12, n_objects=30, total_requests=3000)
        inst = paper_instance(cfg)
        assert inst.n_servers == 12 and inst.n_objects == 30

    def test_deterministic(self):
        cfg = ExperimentConfig(n_servers=10, n_objects=20, total_requests=2000, seed=5)
        a, b = paper_instance(cfg), paper_instance(cfg)
        assert np.array_equal(a.cost, b.cost)
        assert np.array_equal(a.reads, b.reads)
        assert np.array_equal(a.primaries, b.primaries)

    def test_seed_changes_instance(self):
        base = ExperimentConfig(n_servers=10, n_objects=20, total_requests=2000)
        a = paper_instance(base.with_(seed=1))
        b = paper_instance(base.with_(seed=2))
        assert not np.array_equal(a.reads, b.reads)

    def test_rw_ratio_realized(self):
        cfg = ExperimentConfig(
            n_servers=15, n_objects=50, total_requests=40_000, rw_ratio=0.9
        )
        inst = paper_instance(cfg)
        realized = inst.reads.sum() / (inst.reads.sum() + inst.writes.sum())
        assert realized == pytest.approx(0.9, abs=0.02)

    def test_topology_choice(self):
        cfg = ExperimentConfig(
            n_servers=12, n_objects=20, topology="waxman", topology_params={}
        )
        inst = paper_instance(cfg)
        assert inst.n_servers == 12


class TestWorldcupInstance:
    def test_full_pipeline(self):
        cfg = ExperimentConfig(
            n_servers=10, n_objects=40, total_requests=5_000, seed=3
        )
        inst = worldcup_instance(cfg, n_clients=25)
        assert inst.n_servers == 10
        # The parser may drop objects never requested; sizes positive.
        assert inst.n_objects <= 40
        assert inst.total_requests() > 0

    def test_usable_by_algorithms(self):
        from repro.core.agt_ram import run_agt_ram

        cfg = ExperimentConfig(
            n_servers=10,
            n_objects=40,
            total_requests=8_000,
            rw_ratio=0.95,
            capacity_fraction=0.4,
            seed=4,
        )
        inst = worldcup_instance(cfg, n_clients=25)
        res = run_agt_ram(inst)
        assert res.savings_percent >= 0.0
