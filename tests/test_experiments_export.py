"""Tests for CSV export of experiment results."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.export import read_csv_rows, sweep_to_csv, table_to_csv
from repro.experiments.sweeps import capacity_sweep
from repro.experiments.tables import table2_quality

TINY = ExperimentConfig(
    n_servers=10, n_objects=30, total_requests=3_000, seed=90, name="csv-test"
)


class TestSweepExport:
    def test_roundtrip(self, tmp_path):
        rows = capacity_sweep(TINY, capacities=(0.1, 0.3), algorithms=("AGT-RAM",))
        path = sweep_to_csv(rows, tmp_path / "sweep.csv")
        back = read_csv_rows(path)
        assert len(back) == len(rows)
        assert back[0]["algorithm"] == "AGT-RAM"
        assert float(back[0]["savings_percent"]) == pytest.approx(
            rows[0].savings_percent, abs=1e-5
        )

    def test_header(self, tmp_path):
        rows = capacity_sweep(TINY, capacities=(0.2,), algorithms=("AGT-RAM",))
        path = sweep_to_csv(rows, tmp_path / "sweep.csv")
        header = path.read_text().splitlines()[0]
        assert header.startswith("sweep_param,sweep_value,algorithm")

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            sweep_to_csv([], tmp_path / "x.csv")


class TestTableExport:
    def test_roundtrip(self, tmp_path):
        rows = table2_quality(
            TINY, specs=[(8, 24, 0.2, 0.9)], algorithms=("AGT-RAM", "Greedy")
        )
        path = table_to_csv(rows, tmp_path / "table.csv")
        back = read_csv_rows(path)
        assert len(back) == 1
        assert "AGT-RAM" in back[0]
        assert float(back[0]["agt_ram_improvement_percent"]) == pytest.approx(
            rows[0].improvement_percent, abs=1e-5
        )

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            table_to_csv([], tmp_path / "x.csv")
