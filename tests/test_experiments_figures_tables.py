"""Tests for the figure/table drivers and report formatting."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure3_capacity_sweep,
    figure4_rw_sweep,
    replica_growth,
)
from repro.experiments.report import format_series, format_sweep, format_table_rows
from repro.experiments.sweeps import capacity_sweep
from repro.experiments.tables import (
    TableRow,
    _improvement,
    table1_running_time,
    table2_quality,
)

TINY = ExperimentConfig(
    n_servers=12, n_objects=40, total_requests=6_000, seed=31, name="fig-test"
)
ALGS = ("AGT-RAM", "Greedy")


class TestFigureDrivers:
    def test_figure3_series_structure(self):
        series = figure3_capacity_sweep(
            base=TINY, algorithms=ALGS, capacities=(0.1, 0.3)
        )
        assert set(series) == set(ALGS)
        for pts in series.values():
            assert [x for x, _ in pts] == [0.1, 0.3]

    def test_figure4_series_structure(self):
        series = figure4_rw_sweep(base=TINY, algorithms=ALGS, ratios=(0.5, 0.95))
        assert set(series) == set(ALGS)

    def test_figure4_read_heavy_saves_more(self):
        series = figure4_rw_sweep(
            base=TINY, algorithms=("Greedy",), ratios=(0.3, 0.95)
        )
        pts = dict(series["Greedy"])
        assert pts[0.95] > pts[0.3]

    def test_replica_growth_positive(self):
        growth = replica_growth(
            base=TINY.with_(capacity_fraction=0.1),
            algorithms=("Greedy",),
            capacities=(0.10, 0.30),
        )
        assert growth["Greedy"] > 1.0


class TestTableDrivers:
    def test_table1_structure(self):
        rows = table1_running_time(
            TINY, grid=[(8, 20), (10, 30)], algorithms=ALGS
        )
        assert len(rows) == 2
        assert set(rows[0].values) == set(ALGS)

    def test_table2_structure(self):
        rows = table2_quality(
            TINY, specs=[(10, 30, 0.2, 0.9), (12, 40, 0.3, 0.8)], algorithms=ALGS
        )
        assert len(rows) == 2
        for row in rows:
            assert all(v <= 100.0 for v in row.values.values())

    def test_improvement_runtime_direction(self):
        # AGT-RAM faster than best other -> positive improvement.
        assert _improvement(
            {"AGT-RAM": 1.0, "Greedy": 2.0, "GRA": 4.0}, higher_is_better=False
        ) == pytest.approx(50.0)

    def test_improvement_savings_direction(self):
        assert _improvement(
            {"AGT-RAM": 80.0, "Greedy": 75.0}, higher_is_better=True
        ) == pytest.approx(100.0 * 5.0 / 75.0)

    def test_improvement_negative_when_worse(self):
        assert (
            _improvement({"AGT-RAM": 70.0, "Greedy": 75.0}, higher_is_better=True) < 0
        )

    def test_improvement_solo(self):
        assert _improvement({"AGT-RAM": 70.0}, higher_is_better=True) == 0.0


class TestReportFormatting:
    def test_format_series(self):
        series = {"A": [(0.1, 10.0), (0.2, 20.0)], "B": [(0.1, 5.0), (0.2, 8.0)]}
        out = format_series(series, x_label="C")
        assert "10.00" in out and "8.00" in out
        assert out.splitlines()[1].split("|")[0].strip() == "C"

    def test_format_sweep(self):
        rows = capacity_sweep(TINY, capacities=(0.2,), algorithms=("AGT-RAM",))
        out = format_sweep(rows, title="test sweep")
        assert "AGT-RAM" in out and "test sweep" in out

    def test_format_table_rows(self):
        rows = [
            TableRow(label="r1", values={"AGT-RAM": 1.0, "Greedy": 2.0},
                     improvement_percent=50.0)
        ]
        out = format_table_rows(rows, metric_label="Runtime (s)")
        assert "Runtime (s)" in out and "50.00" in out

    def test_format_table_rows_empty(self):
        assert "empty" in format_table_rows([], metric_label="x")
