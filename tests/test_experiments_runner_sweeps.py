"""Tests for the algorithm runner and sweep drivers."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.experiments.runner import PAPER_ALGORITHMS, run_algorithms
from repro.experiments.sweeps import (
    capacity_sweep,
    rw_ratio_sweep,
    size_grid,
    update_ratio_sweep,
)

FAST_KW = {"GRA": {"population_size": 6, "generations": 3}}
TINY = ExperimentConfig(
    n_servers=12, n_objects=40, total_requests=4_000, seed=21, name="sweep-test"
)


class TestRunAlgorithms:
    def test_all_paper_algorithms(self, tiny_instance):
        results = run_algorithms(
            tiny_instance, PAPER_ALGORITHMS, placer_kwargs=FAST_KW
        )
        assert set(results) == set(PAPER_ALGORITHMS)
        for res in results.values():
            assert res.otc > 0

    def test_subset(self, tiny_instance):
        results = run_algorithms(tiny_instance, ["AGT-RAM", "Greedy"])
        assert list(results) == ["AGT-RAM", "Greedy"]

    def test_seeded_stochastic_reproducible(self, tiny_instance):
        a = run_algorithms(tiny_instance, ["DA"], seed=5)["DA"]
        b = run_algorithms(tiny_instance, ["DA"], seed=5)["DA"]
        assert a.otc == b.otc

    def test_unknown_algorithm(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            run_algorithms(tiny_instance, ["Oracle"])


class TestSweeps:
    def test_capacity_sweep_rows(self):
        rows = capacity_sweep(
            TINY, capacities=(0.1, 0.3), algorithms=("AGT-RAM", "Greedy"),
        )
        assert len(rows) == 4
        assert {r.sweep_value for r in rows} == {0.1, 0.3}

    def test_capacity_monotone_savings(self):
        rows = capacity_sweep(
            TINY.with_(rw_ratio=0.95),
            capacities=(0.05, 0.45),
            algorithms=("Greedy",),
        )
        by_cap = {r.sweep_value: r.savings_percent for r in rows}
        assert by_cap[0.45] >= by_cap[0.05]

    def test_rw_sweep_monotone(self):
        rows = rw_ratio_sweep(
            TINY.with_(capacity_fraction=0.45),
            ratios=(0.2, 0.95),
            algorithms=("Greedy",),
        )
        by_rw = {r.sweep_value: r.savings_percent for r in rows}
        assert by_rw[0.95] > by_rw[0.2]

    def test_update_ratio_sweep_maps_to_rw(self):
        rows = update_ratio_sweep(
            TINY, update_ratios=(0.1,), algorithms=("AGT-RAM",)
        )
        assert rows[0].sweep_value == pytest.approx(0.9)

    def test_size_grid_scales_requests(self):
        rows = size_grid(
            TINY, grid=[(8, 20), (16, 40)], algorithms=("AGT-RAM",)
        )
        assert len(rows) == 2
        assert rows[0].sweep_value == (8, 20)

    def test_runtime_recorded(self):
        rows = capacity_sweep(TINY, capacities=(0.2,), algorithms=("AGT-RAM",))
        assert rows[0].runtime_s >= 0.0
