"""Tests for the sensitivity-study driver."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.sensitivity import SensitivityRow, sensitivity_study

BASE = ExperimentConfig(
    n_servers=12,
    n_objects=40,
    total_requests=6_000,
    rw_ratio=0.95,
    capacity_fraction=0.45,
    seed=70,
    name="sens-test",
)

FAST = {"GRA": {"population_size": 6, "generations": 4}}


class TestSensitivityStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return sensitivity_study(
            BASE,
            topology_kinds=("random", "waxman"),
            popularity_alphas=(0.85,),
            server_skews=(1.2,),
            placer_kwargs=FAST,
        )

    def test_row_count(self, rows):
        assert len(rows) == 4  # 2 topologies + 1 alpha + 1 skew

    def test_row_structure(self, rows):
        for r in rows:
            assert isinstance(r, SensitivityRow)
            assert set(r.savings) == {"Greedy", "AGT-RAM", "GRA"}

    def test_knobs_labelled(self, rows):
        knobs = [r.knob for r in rows]
        assert knobs.count("topology") == 2
        assert "popularity_alpha" in knobs and "server_skew" in knobs

    def test_ordering_holds_at_default_regime(self, rows):
        # At the headline regime (read-heavy, generous capacity), the
        # ordering should survive every tested knob.
        assert all(r.ordering_holds for r in rows)

    def test_savings_positive(self, rows):
        for r in rows:
            for alg, s in r.savings.items():
                assert s > 0.0, (r.knob, r.value, alg)
