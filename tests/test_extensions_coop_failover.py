"""Tests for the cooperative regional game and central-body failover."""

import numpy as np
import pytest

from repro.core.agt_ram import run_agt_ram
from repro.core.hierarchical import HierarchicalAGTRam
from repro.drp.feasibility import check_state
from repro.drp.global_engine import RegionalBenefitEngine
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.runtime.simulator import SemiDistributedSimulator


class TestRegionalBenefitEngine:
    def test_single_region_equals_global(self, tiny_instance):
        from repro.drp.global_engine import GlobalBenefitEngine

        st1 = ReplicationState.primaries_only(tiny_instance)
        st2 = ReplicationState.primaries_only(tiny_instance)
        regions = np.zeros(tiny_instance.n_servers, dtype=int)
        regional = RegionalBenefitEngine(tiny_instance, st1, regions)
        global_ = GlobalBenefitEngine(tiny_instance, st2)
        assert np.array_equal(regional.matrix, global_.matrix)

    def test_singleton_regions_equal_local(self, tiny_instance):
        from repro.drp.benefit import BenefitEngine

        st1 = ReplicationState.primaries_only(tiny_instance)
        st2 = ReplicationState.primaries_only(tiny_instance)
        regions = np.arange(tiny_instance.n_servers)
        regional = RegionalBenefitEngine(tiny_instance, st1, regions)
        local = BenefitEngine(tiny_instance, st2)
        assert np.allclose(
            np.where(np.isfinite(regional.matrix), regional.matrix, -1),
            np.where(np.isfinite(local.matrix), local.matrix, -1),
        )

    def test_between_local_and_global(self, tiny_instance, rng):
        from repro.drp.benefit import BenefitEngine
        from repro.drp.global_engine import GlobalBenefitEngine

        st = ReplicationState.primaries_only(tiny_instance)
        regions = rng.integers(0, 3, size=tiny_instance.n_servers)
        regional = RegionalBenefitEngine(tiny_instance, st.copy(), regions)
        local = BenefitEngine(tiny_instance, st.copy())
        global_ = GlobalBenefitEngine(tiny_instance, st.copy())
        finite = np.isfinite(local.matrix)
        assert (regional.matrix[finite] >= local.matrix[finite] - 1e-9).all()
        assert (regional.matrix[finite] <= global_.matrix[finite] + 1e-9).all()

    def test_incremental_matches_fresh(self, tiny_instance, rng):
        st = ReplicationState.primaries_only(tiny_instance)
        regions = rng.integers(0, 3, size=tiny_instance.n_servers)
        engine = RegionalBenefitEngine(tiny_instance, st, regions)
        added = 0
        while added < 8:
            i = int(rng.integers(tiny_instance.n_servers))
            k = int(rng.integers(tiny_instance.n_objects))
            if st.can_host(i, k):
                st.add_replica(i, k)
                engine.notify_allocation(i, k)
                added += 1
        fresh = RegionalBenefitEngine(tiny_instance, st, regions)
        feasible = np.isfinite(fresh.matrix)
        assert np.allclose(engine.matrix[feasible], fresh.matrix[feasible])

    def test_bad_regions_shape(self, tiny_instance):
        st = ReplicationState.primaries_only(tiny_instance)
        with pytest.raises(ValueError):
            RegionalBenefitEngine(tiny_instance, st, np.zeros(3, dtype=int))


class TestCooperativeRegionalGame:
    def test_feasible(self, read_heavy_instance):
        res = HierarchicalAGTRam(
            n_regions=4, mode="concurrent", regional_game="cooperative", seed=0
        ).run(read_heavy_instance)
        check_state(res.state)

    def test_beats_non_cooperative(self, read_heavy_instance):
        # Pooling regional information can only widen what bids see, so
        # cooperative regions capture at least roughly the
        # non-cooperative savings (exact dominance is not guaranteed —
        # allocation order changes — but the trend must hold).
        coop = HierarchicalAGTRam(
            n_regions=4, mode="concurrent", regional_game="cooperative", seed=0
        ).run(read_heavy_instance)
        solo = HierarchicalAGTRam(
            n_regions=4, mode="concurrent", regional_game="non-cooperative", seed=0
        ).run(read_heavy_instance)
        assert coop.savings_percent > 0.9 * solo.savings_percent

    def test_bounded_by_flat_oracle(self, read_heavy_instance):
        coop = HierarchicalAGTRam(
            n_regions=4, mode="sequential", regional_game="cooperative", seed=0
        ).run(read_heavy_instance)
        oracle = run_agt_ram(read_heavy_instance, valuation="global")
        assert coop.savings_percent <= oracle.savings_percent + 1.0

    def test_label(self, tiny_instance):
        res = HierarchicalAGTRam(
            n_regions=2, regional_game="cooperative", seed=0
        ).run(tiny_instance)
        assert "coop" in res.algorithm

    def test_bad_game(self):
        with pytest.raises(ConfigurationError):
            HierarchicalAGTRam(regional_game="zero-sum")


class TestCentralFailover:
    def test_scheme_unchanged_by_failover(self, tiny_instance):
        healthy = SemiDistributedSimulator().run(tiny_instance)
        repaired = SemiDistributedSimulator(central_failure_round=3).run(
            tiny_instance
        )
        assert np.array_equal(healthy.state.x, repaired.state.x)
        assert repaired.otc == pytest.approx(healthy.otc)

    def test_handover_recorded(self, tiny_instance):
        res = SemiDistributedSimulator(central_failure_round=3).run(tiny_instance)
        assert res.extra["central_handover_round"] == 3
        assert res.extra["acting_central"] >= 0

    def test_election_messages_logged(self, tiny_instance):
        res = SemiDistributedSimulator(central_failure_round=0).run(tiny_instance)
        counts = res.extra["metrics"].log.counts
        m = tiny_instance.n_servers
        assert counts["ElectionMessage"] == m * (m - 1)

    def test_no_failure_no_election(self, tiny_instance):
        res = SemiDistributedSimulator().run(tiny_instance)
        assert "ElectionMessage" not in res.extra["metrics"].log.counts
        assert res.extra["central_handover_round"] is None

    def test_failover_with_dead_agents(self, tiny_instance):
        res = SemiDistributedSimulator(
            central_failure_round=1, failed_agents={0, 1}
        ).run(tiny_instance)
        # The acting central must be a live agent.
        assert res.extra["acting_central"] not in {0, 1}

    def test_bad_round(self):
        with pytest.raises(ValueError):
            SemiDistributedSimulator(central_failure_round=-1)

    def test_handover_emits_election_event(self, tiny_instance):
        from repro.obs import events as ev

        with ev.capture() as sink:
            res = SemiDistributedSimulator(central_failure_round=2).run(
                tiny_instance
            )
        elections = [
            e for e in sink.events if isinstance(e, ev.ElectionEvent)
        ]
        assert len(elections) == 1
        assert elections[0].round == 2
        assert elections[0].candidate == res.extra["acting_central"]
        assert elections[0].voters == tiny_instance.n_servers

    def test_immediate_failure_elects_lowest_id(self, tiny_instance):
        res = SemiDistributedSimulator(central_failure_round=0).run(
            tiny_instance
        )
        assert res.extra["central_handover_round"] == 0
        assert res.extra["acting_central"] == 0

    def test_failed_agents_with_immediate_central_failure(self, tiny_instance):
        # Both legacy fault knobs at once: dead agents sit out the
        # election and the game; the lowest *live* id takes over.
        healthy = SemiDistributedSimulator(failed_agents={0, 1}).run(
            tiny_instance
        )
        res = SemiDistributedSimulator(
            central_failure_round=0, failed_agents={0, 1}
        ).run(tiny_instance)
        assert res.extra["acting_central"] == 2
        m = tiny_instance.n_servers
        live = m - 2
        assert res.extra["metrics"].log.counts["ElectionMessage"] == live * (
            live - 1
        )
        # The handover itself must not change the outcome.
        assert np.array_equal(healthy.state.x, res.state.x)
        # Dead agents never receive replicas beyond their primaries.
        primaries_per_agent = np.bincount(
            tiny_instance.primaries, minlength=m
        )
        for dead in (0, 1):
            assert res.state.x[dead].sum() == primaries_per_agent[dead]

    def test_all_agents_failed_with_central_failure(self, tiny_instance):
        # Degenerate combination: nobody is left to elect or bid; the
        # run terminates immediately on the primaries-only scheme.
        res = SemiDistributedSimulator(
            central_failure_round=0,
            failed_agents=set(range(tiny_instance.n_servers)),
        ).run(tiny_instance)
        assert res.rounds == 0
        assert res.extra["central_handover_round"] is None
        assert "ElectionMessage" not in res.extra["metrics"].log.counts

    def test_scheduled_central_crash_matches_legacy_knob_scheme(
        self, tiny_instance
    ):
        # The legacy knob and the fault-schedule path recover through
        # the same election protocol and converge to the same scheme.
        from repro.runtime.faults import FaultPlan, FaultSchedule

        legacy = SemiDistributedSimulator(central_failure_round=3).run(
            tiny_instance
        )
        scheduled = SemiDistributedSimulator(
            faults=FaultPlan(schedule=FaultSchedule(central_crashes={3}))
        ).run(tiny_instance)
        assert np.array_equal(legacy.state.x, scheduled.state.x)
        assert scheduled.extra["acting_central"] == legacy.extra[
            "acting_central"
        ]
