"""Golden-value regression tests.

These pin exact outputs for one fixed configuration so that silent
semantic drift — a changed tie-break, a reordered RNG stream, an
off-by-one in the cost model — fails loudly instead of shifting every
benchmark by a fraction nobody notices.  If a change *intentionally*
alters these values, update them in the same commit and say why.

Environment note: the values depend on numpy's stable RNG streams
(Philox/PCG64 output is specified and stable across numpy versions).
"""

import pytest

from repro.baselines.dutch import DutchAuctionPlacer
from repro.baselines.greedy import GreedyPlacer
from repro.core.agt_ram import run_agt_ram
from repro.drp.cost import primary_only_otc
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance

GOLDEN_CFG = ExperimentConfig(
    n_servers=18,
    n_objects=70,
    total_requests=9_000,
    rw_ratio=0.9,
    capacity_fraction=0.35,
    seed=2026,
    name="golden",
)


@pytest.fixture(scope="module")
def instance():
    return paper_instance(GOLDEN_CFG)


class TestGoldenValues:
    def test_instance_construction(self, instance):
        assert int(instance.capacities.sum()) == 5272
        assert int(instance.primary_load.sum()) == 824
        assert float(instance.cost[0, 1]) == pytest.approx(
            5.434202587015618, rel=1e-12
        )

    def test_primary_only_otc(self, instance):
        assert primary_only_otc(instance) == pytest.approx(
            2563095.8200557833, rel=1e-9
        )

    def test_agt_ram(self, instance):
        res = run_agt_ram(instance)
        assert res.rounds == 79
        assert res.otc == pytest.approx(1457160.1979810924, rel=1e-9)
        assert float(res.extra["payments"].sum()) == pytest.approx(
            383103.7685156604, rel=1e-9
        )

    def test_greedy(self, instance):
        res = GreedyPlacer().place(instance)
        assert res.rounds == 168
        assert res.otc == pytest.approx(1350946.2887703641, rel=1e-9)

    def test_dutch_auction(self, instance):
        res = DutchAuctionPlacer(seed=7).place(instance)
        assert res.extra["sales"] == 63
        assert res.otc == pytest.approx(1467295.888764033, rel=1e-9)
