"""Integration tests asserting the paper's qualitative findings.

These are the claims the reproduction must preserve (DESIGN.md §4):

* capacity sweep: savings rise then flatten (Figure 3),
* R/W sweep: savings rise with the read share (Figure 4),
* AGT-RAM and Greedy lead; GRA trails (Table 2's tiers),
* AGT-RAM is the fastest of the quality methods, and far faster than
  Greedy/Aε-Star/GRA (Table 1),
* more capacity => more replicas (Section 5's 4x observation).

Run at a reduced scale; absolute values differ from the paper (see
EXPERIMENTS.md) but these orderings are scale-stable.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.experiments.runner import run_algorithms

FAST_GRA = {"GRA": {"population_size": 8, "generations": 6}}

BASE = ExperimentConfig(
    n_servers=30,
    n_objects=120,
    total_requests=25_000,
    seed=77,
    name="shapes",
)


@pytest.fixture(scope="module")
def headline_results():
    """All six methods on the paper's headline regime (R/W=.95, C=45%).

    GRA runs at its default budget here so the runtime ordering claim is
    tested against the configuration the benchmarks use.
    """
    inst = paper_instance(BASE.with_(rw_ratio=0.95, capacity_fraction=0.45))
    return run_algorithms(inst, seed=5)


class TestQualityOrdering:
    def test_agt_ram_in_top_tier(self, headline_results):
        savings = {a: r.savings_percent for a, r in headline_results.items()}
        best = max(savings.values())
        assert savings["AGT-RAM"] > 0.8 * best

    def test_gra_trails_everyone(self, headline_results):
        savings = {a: r.savings_percent for a, r in headline_results.items()}
        assert savings["GRA"] == min(savings.values())

    def test_auctions_below_agt_ram(self, headline_results):
        s = {a: r.savings_percent for a, r in headline_results.items()}
        assert s["DA"] <= s["AGT-RAM"] + 1e-9
        assert s["EA"] <= s["AGT-RAM"] + 1e-9

    def test_all_methods_save_substantially(self, headline_results):
        for alg, res in headline_results.items():
            assert res.savings_percent > 15.0, alg

    def test_greedy_and_agt_ram_close(self, headline_results):
        s = {a: r.savings_percent for a, r in headline_results.items()}
        # The paper reports them within a few percent of each other.
        assert s["AGT-RAM"] > 0.8 * s["Greedy"]


class TestRuntimeOrdering:
    @pytest.fixture(scope="class")
    def median_times(self):
        """Median-of-3 runtimes — single runs at millisecond scale are
        too noisy for ordering assertions."""
        import statistics

        inst = paper_instance(BASE.with_(rw_ratio=0.95, capacity_fraction=0.45))
        samples: dict[str, list[float]] = {}
        for trial in range(3):
            res = run_algorithms(inst, seed=trial)
            for alg, r in res.items():
                samples.setdefault(alg, []).append(r.runtime_s)
        return {alg: statistics.median(v) for alg, v in samples.items()}

    def test_agt_ram_faster_than_heavy_methods(self, median_times):
        t = median_times
        assert t["AGT-RAM"] < t["Greedy"]
        assert t["AGT-RAM"] < t["Ae-Star"]
        assert t["AGT-RAM"] < t["GRA"]

    def test_gra_slowest(self, median_times):
        t = median_times
        assert t["GRA"] == max(t.values())


class TestSweepShapes:
    def test_capacity_monotone_then_flat(self):
        from repro.experiments.sweeps import capacity_sweep

        rows = capacity_sweep(
            BASE.with_(rw_ratio=0.95),
            capacities=(0.05, 0.20, 0.45),
            algorithms=("AGT-RAM",),
        )
        s = {r.sweep_value: r.savings_percent for r in rows}
        assert s[0.20] >= s[0.05]
        assert s[0.45] >= s[0.20] - 1.0  # flat or rising at the top
        # Diminishing returns: the first step gains more than the second.
        assert (s[0.20] - s[0.05]) >= (s[0.45] - s[0.20]) - 1.0

    def test_rw_sweep_monotone_for_all_methods(self):
        from repro.experiments.sweeps import rw_ratio_sweep

        rows = rw_ratio_sweep(
            BASE.with_(capacity_fraction=0.45),
            ratios=(0.3, 0.95),
            algorithms=("AGT-RAM", "Greedy", "DA"),
            placer_kwargs=FAST_GRA,
        )
        for alg in ("AGT-RAM", "Greedy", "DA"):
            pts = {
                r.sweep_value: r.savings_percent for r in rows if r.algorithm == alg
            }
            assert pts[0.95] > pts[0.3], alg

    def test_replica_count_grows_with_capacity(self):
        from repro.experiments.figures import replica_growth

        growth = replica_growth(
            base=BASE, algorithms=("AGT-RAM", "Greedy"), capacities=(0.10, 0.30)
        )
        assert growth["AGT-RAM"] > 1.5
        assert growth["Greedy"] > 1.5


class TestUpdateRatioRobustness:
    def test_trends_similar_across_update_ratios(self):
        # Section 5: 5/10/20% update ratios show similar trends — here:
        # AGT-RAM stays within the top tier at each update ratio.
        from repro.experiments.sweeps import update_ratio_sweep

        rows = update_ratio_sweep(
            BASE.with_(capacity_fraction=0.45),
            update_ratios=(0.05, 0.20),
            algorithms=("AGT-RAM", "Greedy", "EA"),
        )
        for u in (0.95, 0.80):  # rw values
            s = {
                r.algorithm: r.savings_percent
                for r in rows
                if r.sweep_value == pytest.approx(u)
            }
            assert s["AGT-RAM"] >= s["EA"] - 1e-9


class TestScaleStability:
    def test_ordering_stable_across_scales(self):
        # The claimed shapes must not be an artifact of one size.
        for m, n, reqs in ((16, 60, 8_000), (40, 160, 40_000)):
            cfg = BASE.with_(
                n_servers=m,
                n_objects=n,
                total_requests=reqs,
                rw_ratio=0.95,
                capacity_fraction=0.45,
            )
            inst = paper_instance(cfg)
            res = run_algorithms(
                inst, ("AGT-RAM", "Greedy", "GRA"), placer_kwargs=FAST_GRA
            )
            s = {a: r.savings_percent for a, r in res.items()}
            assert s["GRA"] < s["AGT-RAM"] <= s["Greedy"] + 5.0
