"""Cross-feature integration pipelines.

Each test chains several subsystems end-to-end the way a user would —
combinations no unit test covers: file-loaded topologies into
hierarchical mechanisms, persisted instances into adaptive runs,
flash-crowd epochs through the trace-replay verifier.
"""

import numpy as np
import pytest

from repro import (
    AdaptiveReplicator,
    ExperimentConfig,
    HierarchicalAGTRam,
    build_instance,
    load_instance,
    load_scheme,
    paper_instance,
    run_agt_ram,
    save_instance,
    save_result,
    synthesize_workload,
    transit_stub_graph,
)
from repro.drp.feasibility import check_state
from repro.topology import read_edge_list, write_edge_list


class TestFileTopologyToHierarchy:
    def test_edge_list_drives_regional_mechanism(self, tmp_path):
        """Topology file -> instance -> transit-stub-aligned regions."""
        topo = transit_stub_graph(2, 2, 1, 4, seed=1)
        loaded = read_edge_list(write_edge_list(topo, tmp_path / "net.txt"))
        w = synthesize_workload(
            loaded.n_nodes, 60, total_requests=10_000, rw_ratio=0.95, seed=2
        )
        inst = build_instance(loaded, w, capacity_fraction=0.4, seed=3)
        # Domain-aligned partition: transit nodes (first 4) region 0,
        # each stub its own region.
        part = np.zeros(loaded.n_nodes, dtype=int)
        for s in range(4):  # 4 stubs of 4 nodes after the 4 transit nodes
            part[4 + 4 * s : 4 + 4 * (s + 1)] = 1 + s
        res = HierarchicalAGTRam(partition=part, mode="concurrent").run(inst)
        check_state(res.state)
        assert res.savings_percent > 0


class TestPersistenceToAdaptation:
    def test_saved_instance_feeds_adaptive_run(self, tmp_path):
        """Persist an instance, reload it, adapt it across epochs, and
        persist the final scheme."""
        from repro.workload.drift import drifting_workloads

        inst = paper_instance(
            ExperimentConfig(
                n_servers=12,
                n_objects=40,
                total_requests=6_000,
                rw_ratio=0.95,
                capacity_fraction=0.4,
                seed=11,
                name="persist-adapt",
            )
        )
        path = save_instance(inst, tmp_path / "inst")
        reloaded = load_instance(path)
        epochs = drifting_workloads(
            12, 40, 3, total_requests=6_000, rw_ratio=0.95, seed=12
        )
        out = AdaptiveReplicator(policy="adaptive").run(reloaded, epochs)
        assert len(out) == 3

    def test_saved_result_reloads_against_instance(self, tmp_path):
        inst = paper_instance(
            ExperimentConfig(
                n_servers=10, n_objects=30, total_requests=3_000, seed=13
            )
        )
        res = run_agt_ram(inst)
        json_path = save_result(res, tmp_path / "res")
        scheme = load_scheme(inst, json_path.with_suffix(".npz"))
        from repro.drp.cost import total_otc

        assert total_otc(scheme) == pytest.approx(res.otc)


class TestFlashCrowdThroughReplay:
    def test_epoch_scheme_validated_by_replay(self):
        """A flash-crowd epoch's closed-form OTC must match a discrete
        per-request replay of the same epoch's demand."""
        from repro.core.adaptive import AdaptiveReplicator as AR
        from repro.drp.cost import total_otc
        from repro.runtime.replay import replay_requests
        from repro.workload.flashcrowd import flash_crowd_workloads

        template = paper_instance(
            ExperimentConfig(
                n_servers=8,
                n_objects=30,
                total_requests=8_000,
                rw_ratio=0.95,
                capacity_fraction=0.4,
                seed=21,
                name="crowd-replay",
            )
        )
        epochs, _ = flash_crowd_workloads(
            8, 30, 2, total_requests=8_000, n_crowds=1, seed=22
        )
        inst = AR._epoch_instance(template, epochs[1])
        res = run_agt_ram(inst)

        servers, objects, kinds = [], [], []
        for i in range(8):
            for k in range(30):
                r, w = int(inst.reads[i, k]), int(inst.writes[i, k])
                servers += [i] * (r + w)
                objects += [k] * (r + w)
                kinds += [True] * r + [False] * w
        realized = replay_requests(
            inst,
            res.state,
            np.array(servers),
            np.array(objects),
            np.array(kinds, dtype=bool),
        )
        assert realized.total == pytest.approx(total_otc(res.state))


class TestBatchedMechanismUnderDeviation:
    def test_batched_rounds_with_strategic_agents(self, read_heavy_instance):
        """Batch allocation + deviating agents + audit, all at once."""
        from repro.core.agt_ram import AGTRam
        from repro.core.strategies import OverProjection

        mech = AGTRam(batch_size=4, strategies={0: OverProjection(3.0)})
        res = mech.run(read_heavy_instance, record_audit=True)
        check_state(res.state)
        assert res.savings_percent > 0

    def test_warm_start_plus_batching(self, read_heavy_instance):
        from repro.core.agt_ram import AGTRam
        from repro.drp.state import ReplicationState

        first = AGTRam(batch_size=8, max_rounds=3).run(read_heavy_instance)
        cont = AGTRam(batch_size=8).run(
            read_heavy_instance,
            initial_state=ReplicationState.from_matrix(
                read_heavy_instance, first.state.x
            ),
        )
        check_state(cont.state)
        assert cont.otc <= first.otc + 1e-9
