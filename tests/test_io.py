"""Tests for instance/scheme/result serialization."""

import json

import numpy as np
import pytest

from repro.core.agt_ram import run_agt_ram
from repro.drp.cost import total_otc
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.io import (
    load_instance,
    load_result_summary,
    load_scheme,
    save_instance,
    save_result,
    save_scheme,
)


class TestInstanceRoundtrip:
    def test_roundtrip(self, tiny_instance, tmp_path):
        path = save_instance(tiny_instance, tmp_path / "inst")
        loaded = load_instance(path)
        assert np.array_equal(loaded.cost, tiny_instance.cost)
        assert np.array_equal(loaded.reads, tiny_instance.reads)
        assert np.array_equal(loaded.writes, tiny_instance.writes)
        assert np.array_equal(loaded.sizes, tiny_instance.sizes)
        assert np.array_equal(loaded.capacities, tiny_instance.capacities)
        assert np.array_equal(loaded.primaries, tiny_instance.primaries)
        assert loaded.name == tiny_instance.name

    def test_suffix_appended(self, tiny_instance, tmp_path):
        path = save_instance(tiny_instance, tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ConfigurationError, match="missing"):
            load_instance(path)

    def test_loaded_instance_runs(self, tiny_instance, tmp_path):
        path = save_instance(tiny_instance, tmp_path / "inst")
        loaded = load_instance(path)
        a = run_agt_ram(tiny_instance)
        b = run_agt_ram(loaded)
        assert a.otc == pytest.approx(b.otc)


class TestSchemeRoundtrip:
    def test_roundtrip(self, tiny_instance, tmp_path):
        res = run_agt_ram(tiny_instance)
        path = save_scheme(res.state, tmp_path / "scheme")
        loaded = load_scheme(tiny_instance, path)
        assert np.array_equal(loaded.x, res.state.x)
        assert total_otc(loaded) == pytest.approx(res.otc)

    def test_wrong_file_rejected(self, tiny_instance, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, y=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_scheme(tiny_instance, path)

    def test_scheme_validated_against_instance(self, tiny_instance, line_instance, tmp_path):
        res = run_agt_ram(tiny_instance)
        path = save_scheme(res.state, tmp_path / "scheme")
        with pytest.raises(Exception):
            load_scheme(line_instance, path)  # wrong dimensions


class TestResultSummary:
    def test_save_and_load(self, tiny_instance, tmp_path):
        res = run_agt_ram(tiny_instance)
        json_path = save_result(res, tmp_path / "result")
        data = load_result_summary(json_path)
        assert data["algorithm"] == "AGT-RAM"
        assert data["savings_percent"] == pytest.approx(res.savings_percent)
        # The scheme sits next to the summary.
        scheme = load_scheme(tiny_instance, json_path.with_suffix(".npz"))
        assert np.array_equal(scheme.x, res.state.x)

    def test_summary_is_plain_json(self, tiny_instance, tmp_path):
        res = run_agt_ram(tiny_instance)
        json_path = save_result(res, tmp_path / "result")
        parsed = json.loads(json_path.read_text())
        assert isinstance(parsed["otc"], float)

    def test_bad_summary_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ConfigurationError):
            load_result_summary(path)
