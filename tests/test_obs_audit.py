"""Unit tests for the offline mechanism audit."""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs import events as ev
from repro.obs.audit import audit_events, audit_file
from repro.obs.export import write_events_jsonl


def clean_round(
    *, round=0, winner=0, bids=((0, 5.0), (1, 2.0), (2, 1.0)), t=1.0
) -> list[ev.Event]:
    """One well-formed second-price round: agent ``winner`` takes obj 3."""
    values = dict(bids)
    events: list[ev.Event] = [ev.RoundStart(t=t, round=round)]
    events.extend(
        ev.BidEvent(t=t, round=round, agent=a, obj=3, value=v)
        for a, v in bids
    )
    second = max(v for a, v in bids if a != winner)
    events += [
        ev.WinnerEvent(
            t=t, round=round, agent=winner, obj=3,
            value=values[winner], obj_size=2, residual_before=10,
        ),
        ev.PaymentEvent(t=t, round=round, agent=winner, amount=second),
        ev.NNUpdateEvent(t=t, round=round, obj=3, agents=3),
        ev.RoundEnd(t=t, round=round, committed=1, otc=100.0),
    ]
    return events


def wrap_run(rounds: list[ev.Event]) -> list[ev.Event]:
    return [
        ev.RunStart(t=0.0, algorithm="AGT-RAM"),
        *rounds,
        ev.RunEnd(t=9.0, algorithm="AGT-RAM", otc=100.0, rounds=1),
    ]


def replace_event(events, index, **changes):
    out = list(events)
    out[index] = dataclasses.replace(out[index], **changes)
    return out


class TestCleanLogs:
    def test_synthetic_round_passes(self):
        report = audit_events(wrap_run(clean_round()))
        assert report.ok, report.summary()
        assert report.rounds_audited == 1
        assert report.payments_verified == 1
        assert "PASS" in report.summary()

    def test_real_agt_ram_log_passes(self, tiny_instance):
        from repro.core.agt_ram import run_agt_ram

        with ev.capture() as sink:
            result = run_agt_ram(tiny_instance)
        report = audit_events(sink.events)
        assert report.ok, report.summary()
        assert report.rounds_audited == result.rounds + 1
        assert report.payments_verified == result.rounds

    def test_real_batched_log_passes(self, tiny_instance):
        from repro.core.agt_ram import AGTRam

        with ev.capture() as sink:
            AGTRam(batch_size=4).run(tiny_instance)
        report = audit_events(sink.events)
        assert report.ok, report.summary()

    def test_real_simulator_log_passes(self, tiny_instance):
        from repro.runtime.simulator import SemiDistributedSimulator

        with ev.capture() as sink:
            SemiDistributedSimulator().run(tiny_instance)
        report = audit_events(sink.events)
        assert report.ok, report.summary()

    def test_audit_file_round_trip(self, tiny_instance, tmp_path):
        from repro.core.agt_ram import run_agt_ram

        with ev.capture() as sink:
            run_agt_ram(tiny_instance)
        path = write_events_jsonl(sink.events, tmp_path / "run.jsonl")
        assert audit_file(path).ok


class TestViolations:
    def test_corrupted_payment_is_flagged(self):
        events = wrap_run(clean_round())
        idx = next(
            i for i, e in enumerate(events) if isinstance(e, ev.PaymentEvent)
        )
        report = audit_events(replace_event(events, idx, amount=4.99))
        assert not report.ok
        assert any(v.kind == "payment" for v in report.violations)
        assert "FAIL" in report.summary()

    def test_wrong_winner_is_flagged(self):
        # Agent 1 (bid 2.0) declared winner although agent 0 bid 5.0.
        events = wrap_run(
            clean_round(winner=1, bids=((0, 5.0), (1, 2.0), (2, 1.0)))
        )
        # clean_round pays the correct second price for agent 1, so only
        # the argmax check should fire.
        report = audit_events(events)
        assert any(
            v.kind == "winner" and "argmax" in v.detail
            for v in report.violations
        )

    def test_winner_mismatching_its_bid_is_flagged(self):
        events = wrap_run(clean_round())
        idx = next(
            i for i, e in enumerate(events) if isinstance(e, ev.WinnerEvent)
        )
        report = audit_events(replace_event(events, idx, obj=7))
        assert any(
            v.kind == "winner" and "does not match" in v.detail
            for v in report.violations
        )

    def test_capacity_violation_is_flagged(self):
        events = wrap_run(clean_round())
        idx = next(
            i for i, e in enumerate(events) if isinstance(e, ev.WinnerEvent)
        )
        report = audit_events(
            replace_event(events, idx, obj_size=11, residual_before=10)
        )
        assert any(v.kind == "capacity" for v in report.violations)

    def test_residual_discontinuity_across_rounds_is_flagged(self):
        # Round 0 leaves agent 0 with residual 8; round 1 claims 10 again.
        rounds = clean_round(round=0, t=1.0) + clean_round(round=1, t=2.0)
        report = audit_events(wrap_run(rounds))
        assert any(
            v.kind == "capacity" and "remained" in v.detail
            for v in report.violations
        )

    def test_unjustified_capacity_reject_is_flagged(self):
        events = wrap_run(clean_round())
        events.insert(
            -2,  # before NNUpdate/RoundEnd — inside the round
            ev.CapacityReject(
                t=1.0, round=0, agent=2, obj=3, obj_size=2, residual=10,
            ),
        )
        report = audit_events(events)
        assert any(
            v.kind == "capacity" and "rejected" in v.detail
            for v in report.violations
        )

    def test_duplicate_reason_reject_is_not_checked_against_residual(self):
        events = wrap_run(clean_round())
        events.insert(
            -2,
            ev.CapacityReject(
                t=1.0, round=0, agent=2, obj=3, obj_size=2, residual=10,
                reason="duplicate",
            ),
        )
        assert audit_events(events).ok

    def test_first_price_rule_is_flagged_as_untruthful(self):
        events = wrap_run(clean_round())
        idx = next(
            i for i, e in enumerate(events) if isinstance(e, ev.PaymentEvent)
        )
        report = audit_events(
            replace_event(events, idx, rule="first_price", amount=5.0)
        )
        assert any(
            "not a truthful" in v.detail for v in report.violations
        )

    def test_payment_to_non_winner_is_flagged(self):
        events = wrap_run(clean_round())
        end_idx = next(
            i for i, e in enumerate(events) if isinstance(e, ev.RoundEnd)
        )
        events.insert(end_idx, ev.PaymentEvent(t=1.0, round=0, agent=2, amount=1.0))
        report = audit_events(events)
        assert any(
            v.kind == "payment" and "non-winner" in v.detail
            for v in report.violations
        )

    def test_duplicate_bid_is_flagged(self):
        events = wrap_run(clean_round())
        bid_idx = next(
            i for i, e in enumerate(events) if isinstance(e, ev.BidEvent)
        )
        events.insert(bid_idx, events[bid_idx])
        report = audit_events(events)
        assert any("bid twice" in v.detail for v in report.violations)

    def test_committed_count_mismatch_is_flagged(self):
        events = wrap_run(clean_round())
        idx = next(
            i for i, e in enumerate(events) if isinstance(e, ev.RoundEnd)
        )
        report = audit_events(replace_event(events, idx, committed=2))
        assert any(
            v.kind == "structure" and "winner event" in v.detail
            for v in report.violations
        )

    def test_truncated_log_is_flagged(self):
        events = wrap_run(clean_round())[:-3]  # drop NN/RoundEnd/RunEnd
        report = audit_events(events)
        assert any(
            "open round" in v.detail for v in report.violations
        )


class TestByzantineAudit:
    def rejected_round(self) -> list[ev.Event]:
        """Agent 0's top bid is rejected by the validator; agent 1 wins
        and is priced against agent 2 only."""
        t = 1.0
        return [
            ev.RoundStart(t=t, round=0),
            ev.BidEvent(t=t, round=0, agent=0, obj=3, value=5.0),
            ev.BidEvent(t=t, round=0, agent=1, obj=3, value=2.0),
            ev.BidEvent(t=t, round=0, agent=2, obj=3, value=1.0),
            ev.ValidationEvent(
                t=t, round=0, agent=0, kind="schema", obj=3, value=5.0,
                detail="rejected",
            ),
            ev.WinnerEvent(
                t=t, round=0, agent=1, obj=3, value=2.0,
                obj_size=2, residual_before=10,
            ),
            ev.PaymentEvent(t=t, round=0, agent=1, amount=1.0),
            ev.NNUpdateEvent(t=t, round=0, obj=3, agents=3),
            ev.RoundEnd(t=t, round=0, committed=1, otc=100.0),
        ]

    def test_rejected_bid_excluded_from_argmax_and_price(self):
        report = audit_events(wrap_run(self.rejected_round()))
        assert report.ok, report.summary()
        assert report.validations_seen == 1
        assert "byzantine log" in report.summary()

    def test_rejected_winner_is_flagged(self):
        events = wrap_run(self.rejected_round())
        idx = next(
            i for i, e in enumerate(events) if isinstance(e, ev.WinnerEvent)
        )
        # Declare the rejected agent the winner: the audit must object.
        events[idx] = dataclasses.replace(events[idx], agent=0, value=5.0)
        report = audit_events(events)
        assert not report.ok
        assert any(
            v.kind == "winner" and "rejected" in v.detail
            for v in report.violations
        )

    def test_tainted_payment_reported_not_violated(self):
        # Agent 1 sets round 0's price, then is quarantined at round 1:
        # the payment is reported as tainted, but the log still passes.
        events = wrap_run(
            clean_round(round=0, winner=0)
            + [
                ev.RoundStart(t=2.0, round=1),
                ev.BidEvent(t=2.0, round=1, agent=0, obj=4, value=3.0),
                ev.QuarantineEvent(
                    t=2.0, round=1, agent=1, action="quarantine",
                    strikes=3, until_round=22,
                ),
                ev.WinnerEvent(
                    t=2.0, round=1, agent=0, obj=4, value=3.0,
                    obj_size=2, residual_before=8,
                ),
                ev.PaymentEvent(t=2.0, round=1, agent=0, amount=0.0),
                ev.NNUpdateEvent(t=2.0, round=1, obj=4, agents=3),
                ev.RoundEnd(t=2.0, round=1, committed=1, otc=95.0),
            ]
        )
        report = audit_events(events)
        assert report.ok, report.summary()
        assert len(report.tainted_payments) == 1
        tp = report.tainted_payments[0]
        assert tp.setter == 1 and tp.round == 0 and tp.amount == 2.0
        assert tp.quarantined_at == 1
        assert report.tainted_payment_total == 2.0
        assert "tainted payments" in report.summary()

    def test_pre_quarantine_price_setters_are_clean(self):
        # Quarantine strictly *before* the priced round does not taint
        # it: the agent had been released and re-offended earlier.
        events = wrap_run(
            [
                ev.QuarantineEvent(
                    t=0.5, round=0, agent=1, action="quarantine",
                    strikes=3, until_round=1,
                ),
            ]
            + clean_round(round=2, winner=0, t=2.0)
        )
        report = audit_events(events)
        assert report.ok
        assert not report.tainted_payments


class TestCli:
    def test_audit_cli_exit_codes(self, tiny_instance, tmp_path):
        from repro.cli import main
        from repro.core.agt_ram import run_agt_ram

        with ev.capture() as sink:
            run_agt_ram(tiny_instance)
        good = write_events_jsonl(sink.events, tmp_path / "good.jsonl")
        assert main(["audit", str(good)]) == 0

        corrupted = [
            dataclasses.replace(e, amount=e.amount + 1.0)
            if isinstance(e, ev.PaymentEvent)
            else e
            for e in sink.events
        ]
        bad = write_events_jsonl(corrupted, tmp_path / "bad.jsonl")
        assert main(["audit", str(bad)]) == 1
