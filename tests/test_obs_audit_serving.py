"""Unit tests for the serving audit (placement-consistency replay)."""

from __future__ import annotations

from repro.obs import events as ev
from repro.obs.audit import audit_serving_events, audit_serving_file
from repro.obs.export import write_events_jsonl


def serve_log(
    *,
    primaries=(0, 2),
    replicas=((1, 0),),
    requests=(),
    middle=(),
    end=True,
):
    """A minimal serving log: start, requests, extras, end."""
    events = [
        ev.ServeStart(
            t=1.0,
            workload="test",
            n_requests=len(requests),
            n_servers=3,
            n_objects=2,
            primaries=primaries,
            replicas=replicas,
        )
    ]
    for tick, (replica, obj, outcome) in enumerate(requests):
        events.append(
            ev.RequestEvent(
                t=2.0,
                tick=tick,
                client=0,
                server=0,
                obj=obj,
                kind="read",
                replica=replica,
                latency=1.0,
                attempts=1,
                hedged=False,
                outcome=outcome,
            )
        )
    events.extend(middle)
    if end:
        ok = sum(1 for _, _, o in requests if o == "ok")
        failed = len(requests) - ok
        events.append(
            ev.ServeEnd(
                t=3.0,
                served=ok,
                shed=0,
                failed=failed,
                hedges=0,
                failovers=0,
                reauctions=sum(
                    1 for e in middle if isinstance(e, ev.ReauctionEvent)
                ),
                availability=1.0,
                p50=1.0,
                p99=1.0,
            )
        )
    return events


def reauction(*, added=(), removed=(), tick=0):
    return ev.ReauctionEvent(
        t=2.5,
        tick=tick,
        trigger="drift",
        objects=tuple(sorted({o for _, o in added} | {o for _, o in removed})),
        added=added,
        removed=removed,
        otc_before=10.0,
        otc_after=9.0,
        rounds=1,
    )


class TestCleanLogs:
    def test_replica_and_primary_serves_pass(self):
        report = audit_serving_events(
            serve_log(requests=[(1, 0, "ok"), (0, 0, "ok"), (2, 1, "ok")])
        )
        assert report.ok
        assert report.requests_audited == 3
        assert report.served_ok == 3

    def test_failed_requests_are_not_placement_violations(self):
        report = audit_serving_events(serve_log(requests=[(-1, 0, "failed")]))
        assert report.ok
        assert report.failed == 1

    def test_empty_stream_is_ok(self):
        assert audit_serving_events([]).ok

    def test_summary_mentions_verdict(self):
        report = audit_serving_events(serve_log(requests=[(1, 0, "ok")]))
        assert "PASS" in report.summary()


class TestViolations:
    def test_serving_from_non_replica_flagged(self):
        # Server 2 holds no copy of object 0.
        report = audit_serving_events(serve_log(requests=[(2, 0, "ok")]))
        assert not report.ok
        assert any(v.kind == "placement" for v in report.violations)

    def test_stale_replica_after_removal_flagged(self):
        events = serve_log(
            requests=[(1, 0, "ok")],
            middle=[reauction(removed=((1, 0),))],
        )
        # Reorder: reauction happens before the request is served.
        start, req, re_ev, end = events
        report = audit_serving_events([start, re_ev, req, end])
        assert not report.ok
        assert any(v.kind == "placement" for v in report.violations)

    def test_added_replica_becomes_legal(self):
        events = serve_log(requests=[], middle=[reauction(added=((2, 0),))])
        start, re_ev, end = events
        late_request = ev.RequestEvent(
            t=2.6, tick=5, client=0, server=0, obj=0, kind="read",
            replica=2, latency=1.0, attempts=1, hedged=False, outcome="ok",
        )
        end = ev.ServeEnd(
            t=3.0, served=1, shed=0, failed=0, hedges=0, failovers=0,
            reauctions=1, availability=1.0, p50=1.0, p99=1.0,
        )
        report = audit_serving_events([start, re_ev, late_request, end])
        assert report.ok

    def test_removing_primary_flagged(self):
        report = audit_serving_events(
            serve_log(middle=[reauction(removed=((0, 0),))])
        )
        assert not report.ok
        assert any(v.kind == "placement" for v in report.violations)

    def test_removing_absent_pair_is_structure_violation(self):
        report = audit_serving_events(
            serve_log(middle=[reauction(removed=((1, 1),))])
        )
        assert not report.ok
        assert any(v.kind == "structure" for v in report.violations)

    def test_serve_end_count_mismatch_flagged(self):
        events = serve_log(requests=[(1, 0, "ok")], end=False)
        events.append(
            ev.ServeEnd(
                t=3.0, served=5, shed=0, failed=0, hedges=0, failovers=0,
                reauctions=0, availability=1.0, p50=1.0, p99=1.0,
            )
        )
        report = audit_serving_events(events)
        assert not report.ok
        assert any(v.kind == "structure" for v in report.violations)


class TestFileRoundTrip:
    def test_audit_serving_file(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        write_events_jsonl(
            serve_log(requests=[(1, 0, "ok"), (2, 1, "ok")]), path
        )
        assert audit_serving_file(path).ok
