"""Columnar pipeline tests: binary codec round-trips, JSONL rotation,
windowed/streaming audit equivalence and buffered-vs-legacy emission
identity.

The contracts under test (docs/observability.md):

* the ``REVB`` binary codec decodes back to the *same typed events* for
  every registered kind and any field values (property-based);
* a rotated JSONL log is a set of self-contained chunks whose
  concatenated replay equals the unrotated stream, re-discoverable from
  the logical path alone;
* windowing the audit never changes its verdicts — only when partial
  reports surface;
* the buffered columnar emission path is byte-equivalent to the legacy
  per-object path on a real mechanism run.
"""

from __future__ import annotations

import math
from dataclasses import fields, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import events as ev
from repro.obs.audit import audit_events, audit_files, audit_stream
from repro.obs.events import (
    EVENT_TYPES,
    ColumnarRoundBuffer,
    WinnerEvent,
    iter_block_events,
)
from repro.obs.export import (
    BINARY_MAGIC,
    RotatingJsonlWriter,
    chunk_path,
    event_log_chunks,
    iter_events_binary,
    open_event_stream,
    read_events_binary,
    read_events_jsonl,
    write_events_binary,
    write_events_jsonl,
)


@pytest.fixture(scope="module")
def tiny_events():
    """The event stream of one real tiny-preset AGT-RAM run."""
    from repro.core.agt_ram import AGTRam
    from repro.experiments.instances import paper_instance
    from repro.obs.report import bench_config

    instance = paper_instance(bench_config("tiny"))
    with ev.logical_time():
        with ev.capture(ev.ColumnarSink()) as sink:
            AGTRam(engine="vectorized", emission="columnar").run(instance)
    return list(sink.iter_events())


# -- binary codec ------------------------------------------------------------

_INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
# Object/agent indices: ReauctionEvent coerces them through int(), so
# keep them in a realistic range rather than the full i64 span.
_INDEX = st.integers(min_value=-1, max_value=10_000)

#: One strategy per field-annotation shape the codec supports; every
#: event field resolves through this table, so a new field shape fails
#: loudly here before it can fail silently in the codec.
_FIELD_STRATEGIES: dict[str, st.SearchStrategy] = {
    "float": st.floats(allow_nan=False, width=64),
    "int": _INT64,
    "bool": st.booleans(),
    "str": st.text(max_size=30),
    "tuple[int, ...]": st.lists(_INDEX, max_size=6).map(tuple),
    "tuple[tuple[int, int], ...]": st.lists(
        st.tuples(_INDEX, _INDEX), max_size=6
    ).map(tuple),
}


def _event_strategy(cls) -> st.SearchStrategy:
    return st.builds(
        cls, **{f.name: _FIELD_STRATEGIES[f.type] for f in fields(cls)}
    )


arbitrary_events = st.lists(
    st.one_of([_event_strategy(cls) for cls in EVENT_TYPES.values()]),
    max_size=12,
)


class TestBinaryCodec:
    def test_every_registered_kind_round_trips(self, tmp_path):
        events = [cls(t=0.25) for cls in EVENT_TYPES.values()]
        path = write_events_binary(events, tmp_path / "defaults.rev")
        assert read_events_binary(path) == events

    @given(events=arbitrary_events)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_lossless(self, events, tmp_path_factory):
        path = tmp_path_factory.mktemp("rev") / "log.rev"
        write_events_binary(events, path)
        decoded = read_events_binary(path)
        assert decoded == events
        # Not just equal: same concrete kinds, same serialized form.
        assert [e.to_dict() for e in decoded] == [e.to_dict() for e in events]

    def test_real_run_round_trips_and_beats_jsonl(self, tiny_events, tmp_path):
        jsonl = write_events_jsonl(tiny_events, tmp_path / "run.jsonl")
        binary = write_events_binary(tiny_events, tmp_path / "run.rev")
        assert read_events_binary(binary) == tiny_events
        assert read_events_jsonl(jsonl) == tiny_events
        assert binary.stat().st_size < jsonl.stat().st_size

    def test_open_event_stream_sniffs_both_formats(self, tiny_events, tmp_path):
        jsonl = write_events_jsonl(tiny_events, tmp_path / "run.jsonl")
        binary = write_events_binary(tiny_events, tmp_path / "run.rev")
        assert list(open_event_stream(binary)) == tiny_events
        assert list(open_event_stream(jsonl)) == tiny_events

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "bogus.rev"
        p.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="binary event log"):
            list(iter_events_binary(p))

    def test_newer_container_version_rejected(self, tmp_path):
        p = tmp_path / "future.rev"
        p.write_bytes(BINARY_MAGIC + bytes([99]) + b"\x00\x00")
        with pytest.raises(ValueError, match="newer than supported"):
            list(iter_events_binary(p))

    def test_unknown_kind_tag_rejected(self, tmp_path):
        p = tmp_path / "alien.rev"
        tag = b"martian"
        p.write_bytes(
            BINARY_MAGIC + bytes([1]) + b"\x01\x00" + bytes([len(tag)]) + tag
        )
        with pytest.raises(ValueError, match="unknown event kind"):
            list(iter_events_binary(p))

    def test_truncated_record_rejected(self, tmp_path, tiny_events):
        full = write_events_binary(tiny_events, tmp_path / "full.rev")
        cut = tmp_path / "cut.rev"
        cut.write_bytes(full.read_bytes()[:-3])
        with pytest.raises(ValueError, match="truncated"):
            list(iter_events_binary(cut))


# -- JSONL rotation ----------------------------------------------------------


class TestRotation:
    def test_chunk_naming(self):
        assert chunk_path("events.jsonl", 0).name == "events.part00000.jsonl"
        assert chunk_path("a/b/log.jsonl", 12).name == "log.part00012.jsonl"

    def test_no_limits_writes_single_file(self, tiny_events, tmp_path):
        logical = tmp_path / "plain.jsonl"
        with RotatingJsonlWriter(logical) as w:
            w.write_all(tiny_events)
        assert w.paths == [logical]
        assert event_log_chunks(logical) == [logical]
        assert read_events_jsonl(logical) == tiny_events

    def test_rotate_by_events(self, tiny_events, tmp_path):
        logical = tmp_path / "rot.jsonl"
        with RotatingJsonlWriter(logical, max_events=50) as w:
            w.write_all(tiny_events)
        assert len(w.paths) == math.ceil(len(tiny_events) / 50)
        # Each chunk is a self-contained log; concatenated replay is
        # the original stream; the chunk set is re-discoverable from
        # the logical path alone.
        replay = [e for p in w.paths for e in read_events_jsonl(p)]
        assert replay == tiny_events
        assert event_log_chunks(logical) == w.paths

    def test_rotate_by_bytes_never_splits_an_event(self, tiny_events, tmp_path):
        logical = tmp_path / "rotb.jsonl"
        with RotatingJsonlWriter(logical, max_bytes=4096) as w:
            w.write_all(tiny_events)
        assert len(w.paths) > 1
        replay = [e for p in event_log_chunks(logical) for e in read_events_jsonl(p)]
        assert replay == tiny_events

    def test_zero_events_yields_valid_empty_log(self, tmp_path):
        logical = tmp_path / "empty.jsonl"
        with RotatingJsonlWriter(logical):
            pass
        assert read_events_jsonl(logical) == []

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            event_log_chunks(tmp_path / "never.jsonl")


# -- windowed / streaming audit ----------------------------------------------


class TestWindowedAudit:
    def test_windowing_never_changes_the_verdict(self, tiny_events):
        whole = audit_events(tiny_events)
        assert whole.ok
        for window in (1, 5, 64, 10_000):
            assert audit_stream(iter(tiny_events), window=window) == whole

    def test_window_callback_streams_partial_reports(self, tiny_events):
        marks = []
        report = audit_stream(
            iter(tiny_events),
            window=4,
            on_window=lambda rounds, rep: marks.append((rounds, rep.ok)),
        )
        assert marks, "windowed audit fired no callbacks"
        assert [m[0] for m in marks] == sorted(m[0] for m in marks)
        assert marks[-1][0] <= report.rounds_audited

    def test_multi_chunk_audit_equals_whole_log(self, tiny_events, tmp_path):
        logical = tmp_path / "chunked.jsonl"
        with RotatingJsonlWriter(logical, max_events=40) as w:
            w.write_all(tiny_events)
        assert len(w.paths) > 2
        assert audit_files([logical], window=8) == audit_events(tiny_events)

    def test_mixed_format_chain(self, tiny_events, tmp_path):
        mid = len(tiny_events) // 2
        first = write_events_jsonl(tiny_events[:mid], tmp_path / "a.jsonl")
        second = write_events_binary(tiny_events[mid:], tmp_path / "b.rev")
        assert audit_files([first, second]) == audit_events(tiny_events)

    def test_corrupt_log_fails_windowed_and_whole_alike(self, tiny_events):
        tampered = [
            replace(e, value=e.value + 1.0) if isinstance(e, WinnerEvent) else e
            for e in tiny_events
        ]
        whole = audit_events(tampered)
        assert not whole.ok
        assert audit_stream(iter(tampered), window=3) == whole

    def test_negative_window_rejected(self, tiny_events):
        with pytest.raises(ValueError, match="window"):
            audit_stream(iter(tiny_events), window=-1)


# -- buffered vs legacy emission ---------------------------------------------


class TestEmissionIdentity:
    def test_same_seed_buffered_stream_is_byte_identical(self):
        from repro.core.agt_ram import AGTRam
        from repro.experiments.instances import paper_instance
        from repro.obs.report import bench_config

        instance = paper_instance(bench_config("tiny"))
        with ev.logical_time():
            with ev.capture(ev.RecordingSink()) as legacy:
                legacy_result = AGTRam(
                    engine="vectorized", emission="object"
                ).run(instance)
        with ev.logical_time():
            with ev.capture(ev.ColumnarSink()) as columnar:
                columnar_result = AGTRam(
                    engine="vectorized", emission="columnar"
                ).run(instance)
        assert [e.to_dict() for e in columnar.iter_events()] == [
            e.to_dict() for e in legacy.events
        ]
        assert columnar_result.otc == legacy_result.otc

    def test_compare_emission_paths_identity(self):
        from repro.obs.overhead import compare_emission_paths

        cmp = compare_emission_paths("tiny", repeats=1)
        assert cmp.ok, cmp.mismatches
        assert cmp.n_events > 0 and cmp.rounds > 0


# -- buffer backends ---------------------------------------------------------


def _stage_sample_rounds(buffer: ColumnarRoundBuffer) -> None:
    inf = math.inf
    buffer.stage([1.5, -inf, 2.5], [0, 0, 2])
    buffer.commit(winner=2, obj=2, residual_before=20, payment=1.5, otc=90.0)
    buffer.stage([0.5, 3.25, -inf], [1, 1, 0])
    buffer.commit(winner=1, obj=1, residual_before=13, payment=0.5, otc=84.0)
    buffer.stage([-inf, -inf, -inf], [0, 0, 0])
    buffer.close(otc=84.0)


def _expand_without_time(buffer: ColumnarRoundBuffer) -> list[dict]:
    block = buffer.flush()
    assert block is not None
    out = []
    for event in iter_block_events(block):
        d = event.to_dict()
        d.pop("t")
        out.append(d)
    return out


class TestBufferBackends:
    SIZES = [5, 7, 9]

    def test_array_fallback_matches_numpy(self):
        pytest.importorskip("numpy")
        np_buf = ColumnarRoundBuffer(3, self.SIZES, backend="numpy")
        py_buf = ColumnarRoundBuffer(3, self.SIZES, backend="array")
        _stage_sample_rounds(np_buf)
        _stage_sample_rounds(py_buf)
        assert _expand_without_time(np_buf) == _expand_without_time(py_buf)

    @pytest.mark.parametrize("backend", ["numpy", "array"])
    def test_staged_n_bids_matches_flush_recount(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        recount = ColumnarRoundBuffer(3, self.SIZES, backend=backend)
        staged = ColumnarRoundBuffer(3, self.SIZES, backend=backend)
        _stage_sample_rounds(recount)
        _stage_sample_rounds(staged)
        # The hot loop fills n_bids itself and flips the flag; flush
        # must then trust the staged counts instead of recounting.
        staged.staged_n_bids = True
        for i, count in enumerate([2, 2, 0]):
            staged.n_bids[i] = count
        assert _expand_without_time(staged) == _expand_without_time(recount)

    @pytest.mark.parametrize("backend", ["numpy", "array"])
    def test_flush_rearms_and_advances_base_round(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        buffer = ColumnarRoundBuffer(3, self.SIZES, capacity=2, backend=backend)
        _stage_sample_rounds_first_two = [
            ([1.5, -math.inf, 2.5], (2, 2, 20, 1.5, 90.0)),
            ([0.5, 3.25, -math.inf], (1, 1, 13, 0.5, 84.0)),
        ]
        for vals, commit in _stage_sample_rounds_first_two:
            buffer.stage(vals, [0, 1, 2])
            buffer.commit(*commit)
        assert buffer.full
        first = _expand_without_time(buffer)
        buffer.stage([-math.inf] * 3, [0, 0, 0])
        buffer.close(otc=84.0)
        second = _expand_without_time(buffer)
        rounds = [d["round"] for d in first + second if d["type"] == "round_start"]
        assert rounds == [0, 1, 2]
        assert buffer.flush() is None

    def test_empty_flush_is_none(self):
        assert ColumnarRoundBuffer(2, [1, 1]).flush() is None
