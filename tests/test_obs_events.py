"""Unit tests for the repro.obs event stream."""

from __future__ import annotations

import json

import pytest

from repro.obs import events as ev


class TestEventRecords:
    @pytest.mark.parametrize(
        "event",
        [
            ev.RunStart(t=1.0, algorithm="AGT-RAM"),
            ev.RunEnd(t=2.0, algorithm="AGT-RAM", otc=123.5, rounds=7),
            ev.RoundStart(t=1.1, round=3),
            ev.BidEvent(t=1.2, round=3, agent=4, obj=9, value=2.5),
            ev.WinnerEvent(
                t=1.3, round=3, agent=4, obj=9, value=2.5,
                obj_size=2, residual_before=10,
            ),
            ev.PaymentEvent(t=1.4, round=3, agent=4, amount=1.75),
            ev.NNUpdateEvent(t=1.5, round=3, obj=9, agents=16),
            ev.CapacityReject(
                t=1.6, round=3, agent=5, obj=9, obj_size=4, residual=1,
            ),
            ev.RoundEnd(t=1.7, round=3, committed=1, otc=120.0),
            ev.ValidationEvent(
                t=1.8, round=3, agent=5, kind="schema", obj=99, value=2.0,
                detail="object id 99 out of range",
            ),
            ev.ManipulationEvent(
                t=1.9, round=3, agent=5, kind="misreport", obj=9,
                reported=7.5, recomputed=2.5,
            ),
            ev.QuarantineEvent(
                t=2.0, round=3, agent=5, action="quarantine", strikes=3,
                until_round=24,
            ),
            ev.AdversaryEvent(
                t=2.1, round=3, agent=5, behavior="inflate", obj=9,
                value=5.0, detail="",
            ),
            ev.ServeStart(
                t=3.0, workload="worldcup", n_requests=1000, n_servers=4,
                n_objects=8, primaries=(0, 1, 2, 3, 0, 1, 2, 3),
                replicas=((0, 1), (2, 5)),
            ),
            ev.ServeEnd(
                t=4.0, served=990, shed=5, failed=5, hedges=12,
                failovers=3, reauctions=1, availability=0.995,
                p50=1.5, p99=9.0,
            ),
            ev.RequestEvent(
                t=3.1, tick=7, client=12, server=2, obj=5, kind="read",
                replica=2, latency=1.25, attempts=2, hedged=True,
                outcome="ok",
            ),
            ev.RequestTimeout(t=3.2, tick=7, obj=5, replica=3, attempt=1,
                              deadline=8.0),
            ev.HedgeEvent(t=3.3, tick=7, obj=5, primary=3, backup=2,
                          winner=2, threshold=4.5),
            ev.ShedEvent(t=3.4, tick=8, client=12, obj=5, kind="write",
                         tokens=0.25),
            ev.FailoverEvent(t=3.5, tick=7, obj=5, from_server=3,
                             to_server=2, reason="timeout"),
            ev.ReauctionEvent(
                t=3.6, tick=500, trigger="drift", objects=(5, 6),
                added=((2, 5),), removed=((3, 6),), otc_before=100.0,
                otc_after=90.0, rounds=2,
            ),
        ],
    )
    def test_round_trips_through_dict(self, event):
        d = event.to_dict()
        assert d["type"] == type(event).type
        json.dumps(d)  # JSON-safe
        assert ev.parse_event(d) == event

    def test_parse_ignores_unknown_extra_keys(self):
        d = ev.BidEvent(t=1.0, round=0, agent=1, obj=2, value=3.0).to_dict()
        d["future_field"] = "whatever"
        parsed = ev.parse_event(d)
        assert isinstance(parsed, ev.BidEvent)
        assert parsed.agent == 1

    def test_parse_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown event type"):
            ev.parse_event({"type": "no_such_event", "t": 0.0})
        with pytest.raises(ValueError):
            ev.parse_event({"t": 0.0})

    def test_every_type_tag_is_registered_and_unique(self):
        assert len(ev.EVENT_TYPES) == 30
        for tag, cls in ev.EVENT_TYPES.items():
            assert cls.type == tag
        # The five fault-layer events are part of the vocabulary.
        for tag in ("fault", "timeout", "election", "checkpoint", "recovery"):
            assert tag in ev.EVENT_TYPES
        # ... as are the four Byzantine-layer events.
        for tag in ("validation", "manipulation", "quarantine", "adversary"):
            assert tag in ev.EVENT_TYPES
        # ... and the eight serving-layer events.
        for tag in (
            "serve_start", "serve_end", "request", "request_timeout",
            "hedge", "shed", "failover", "reauction",
        ):
            assert tag in ev.EVENT_TYPES
        # ... and the three sharded-central events.
        for tag in ("partition", "heal", "reconcile"):
            assert tag in ev.EVENT_TYPES


class TestSinkRegistry:
    def test_default_sink_is_null_and_disabled(self):
        assert ev.current() is ev.NULL_SINK
        assert not ev.NULL_SINK.enabled
        ev.NULL_SINK.emit(ev.RoundStart(t=0.0, round=0))  # no-op, no error

    def test_capture_installs_and_restores(self):
        before = ev.current()
        with ev.capture() as sink:
            assert ev.current() is sink
            assert sink.enabled
            sink.emit(ev.RoundStart(t=0.0, round=0))
        assert ev.current() is before
        assert len(sink) == 1

    def test_capture_accepts_existing_sink(self):
        mine = ev.RecordingSink()
        with ev.capture(mine) as sink:
            assert sink is mine

    def test_capture_restores_on_exception(self):
        with pytest.raises(ValueError):
            with ev.capture():
                raise ValueError("boom")
        assert ev.current() is ev.NULL_SINK

    def test_install_returns_previous_and_none_restores_null(self):
        mine = ev.RecordingSink()
        previous = ev.install(mine)
        try:
            assert ev.current() is mine
        finally:
            assert ev.install(None) is mine
        assert ev.current() is ev.NULL_SINK

    def test_sinks_are_contextvar_isolated_across_threads(self):
        import threading

        seen = {}

        def worker(name):
            with ev.capture() as sink:
                ev.current().emit(ev.RoundStart(t=0.0, round=hash(name) % 100))
                seen[name] = sink.events

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ev.current() is ev.NULL_SINK
        for events in seen.values():
            assert len(events) == 1


class TestRoundSeries:
    def test_append_and_len(self):
        s = ev.RoundSeries()
        s.append(otc=10.0, best_bid=2.0, payment=1.0, n_bids=3)
        s.append(otc=8.0, best_bid=1.5, payment=0.5, n_bids=2, messages=7, bytes=99)
        assert len(s) == 2
        assert s.otc == [10.0, 8.0]
        assert s.messages == [7]

    def test_to_dict_omits_unused_protocol_series(self):
        s = ev.RoundSeries()
        s.append(otc=1.0, best_bid=1.0, payment=0.0, n_bids=1)
        d = s.to_dict()
        assert set(d) == {"otc", "best_bid", "payment", "n_bids"}
        s.append(otc=0.5, best_bid=0.5, payment=0.0, n_bids=1, messages=3, bytes=12)
        d = s.to_dict()
        assert d["messages"] == [3]
        assert d["bytes"] == [12]
        json.dumps(d)


class TestMechanismEmission:
    def test_agt_ram_emits_a_consistent_stream(self, tiny_instance):
        from repro.core.agt_ram import run_agt_ram

        with ev.capture() as sink:
            result = run_agt_ram(tiny_instance)
        by_type: dict[str, list] = {}
        for e in sink.events:
            by_type.setdefault(type(e).type, []).append(e)
        assert len(by_type["run_start"]) == len(by_type["run_end"]) == 1
        # One winner + payment + nn_update per committed round.
        assert len(by_type["winner"]) == result.rounds
        assert len(by_type["payment"]) == result.rounds
        assert len(by_type["nn_update"]) == result.rounds
        # Rounds: every committed round plus the terminating one.
        assert len(by_type["round_start"]) == len(by_type["round_end"])
        assert len(by_type["round_end"]) == result.rounds + 1
        # Timestamps are non-decreasing in emission order.
        ts = [e.t for e in sink.events]
        assert ts == sorted(ts)
        series = result.extra["round_series"]
        assert len(series) == result.rounds
        assert series.otc[-1] == pytest.approx(result.otc)

    def test_simulator_emits_protocol_series(self, tiny_instance):
        from repro.runtime.simulator import SemiDistributedSimulator

        with ev.capture() as sink:
            result = SemiDistributedSimulator().run(tiny_instance)
        series = result.extra["round_series"]
        assert len(series) == result.rounds
        assert len(series.messages) == result.rounds
        assert all(m > 0 for m in series.messages)
        assert all(b > 0 for b in series.bytes)
        winners = [e for e in sink.events if isinstance(e, ev.WinnerEvent)]
        assert len(winners) == result.rounds

    def test_baselines_emit_run_boundaries(self, tiny_instance):
        from repro.baselines.base import make_placer

        with ev.capture() as sink:
            make_placer("Greedy").place(tiny_instance)
        tags = [type(e).type for e in sink.events]
        assert tags[0] == "run_start"
        assert tags[-1] == "run_end"

    def test_disabled_by_default_no_events_no_series(self, tiny_instance):
        from repro.core.agt_ram import run_agt_ram

        result = run_agt_ram(tiny_instance)
        assert "round_series" not in result.extra
        assert ev.current() is ev.NULL_SINK

    def test_eventing_does_not_change_results(self, tiny_instance):
        from repro.core.agt_ram import run_agt_ram

        plain = run_agt_ram(tiny_instance)
        with ev.capture():
            evented = run_agt_ram(tiny_instance)
        assert evented.otc == pytest.approx(plain.otc)
        assert evented.rounds == plain.rounds

    def test_batched_mode_emits_uniform_payments(self, tiny_instance):
        from repro.core.agt_ram import AGTRam

        with ev.capture() as sink:
            result = AGTRam(batch_size=4).run(tiny_instance)
        payments = [e for e in sink.events if isinstance(e, ev.PaymentEvent)]
        assert payments, "batched run should pay winners"
        assert all(p.rule == "uniform" for p in payments)
        series = result.extra["round_series"]
        round_ends = [
            e
            for e in sink.events
            if isinstance(e, ev.RoundEnd) and e.committed > 0
        ]
        assert len(series) == len(round_ends)
