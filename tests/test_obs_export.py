"""Unit tests for the repro.obs exporters (JSONL / Chrome trace / OpenMetrics)."""

from __future__ import annotations

import json

import pytest

from repro.obs import events as ev
from repro.obs.export import (
    EVENTS_KIND,
    events_to_chrome_trace,
    lint_openmetrics,
    openmetrics_from_bench,
    openmetrics_from_snapshot,
    read_events_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)


def small_stream() -> list[ev.Event]:
    """A hand-built two-round run, valid for every exporter."""
    return [
        ev.RunStart(t=1.0, algorithm="AGT-RAM"),
        ev.RoundStart(t=1.1, round=0),
        ev.BidEvent(t=1.2, round=0, agent=0, obj=3, value=5.0),
        ev.BidEvent(t=1.2, round=0, agent=1, obj=3, value=2.0),
        ev.WinnerEvent(
            t=1.3, round=0, agent=0, obj=3, value=5.0,
            obj_size=2, residual_before=10,
        ),
        ev.PaymentEvent(t=1.4, round=0, agent=0, amount=2.0),
        ev.NNUpdateEvent(t=1.5, round=0, obj=3, agents=2),
        ev.RoundEnd(t=1.6, round=0, committed=1, otc=90.0),
        ev.RoundStart(t=1.7, round=1),
        ev.RoundEnd(t=1.8, round=1, committed=0, otc=90.0),
        ev.RunEnd(t=1.9, algorithm="AGT-RAM", otc=90.0, rounds=1),
    ]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        events = small_stream()
        path = write_events_jsonl(events, tmp_path / "run.jsonl")
        assert read_events_jsonl(path) == events

    def test_header_is_first_line(self, tmp_path):
        path = write_events_jsonl(small_stream(), tmp_path / "run.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "kind": EVENTS_KIND,
            "schema_version": ev.EVENT_SCHEMA_VERSION,
        }

    def test_rejects_foreign_header(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"kind": "something-else", "schema_version": 1}\n')
        with pytest.raises(ValueError, match="not a repro-events log"):
            read_events_jsonl(p)

    def test_rejects_newer_schema(self, tmp_path):
        p = tmp_path / "future.jsonl"
        p.write_text(
            json.dumps(
                {
                    "kind": EVENTS_KIND,
                    "schema_version": ev.EVENT_SCHEMA_VERSION + 1,
                }
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="newer than supported"):
            read_events_jsonl(p)

    def test_rejects_empty_file(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_events_jsonl(p)

    def test_parse_error_carries_line_number(self, tmp_path):
        path = write_events_jsonl(small_stream()[:2], tmp_path / "run.jsonl")
        with open(path, "a") as f:
            f.write('{"type": "martian", "t": 0.0}\n')
        with pytest.raises(ValueError, match="line 4"):
            read_events_jsonl(path)


class TestChromeTrace:
    def test_empty_stream(self):
        doc = events_to_chrome_trace([])
        assert doc["traceEvents"] == []
        validate_chrome_trace(doc)

    def test_rounds_become_slices_and_bids_become_instants(self):
        doc = events_to_chrome_trace(small_stream())
        validate_chrome_trace(doc)
        by_ph: dict[str, list] = {}
        for e in doc["traceEvents"]:
            by_ph.setdefault(e["ph"], []).append(e)
        slice_names = {e["name"] for e in by_ph["X"]}
        assert slice_names == {"run AGT-RAM", "round 0", "round 1"}
        instant_names = [e["name"] for e in by_ph["i"]]
        assert instant_names.count("bid") == 2
        assert "winner" in instant_names and "payment" in instant_names
        # Per-agent tracks: agent 0 -> tid 1, agent 1 -> tid 2.
        bid_tids = {e["tid"] for e in by_ph["i"] if e["name"] == "bid"}
        assert bid_tids == {1, 2}
        thread_names = {
            e["args"]["name"] for e in by_ph["M"] if e["name"] == "thread_name"
        }
        assert thread_names == {"central", "agent 0", "agent 1"}

    def test_timestamps_rebased_to_microseconds(self):
        doc = events_to_chrome_trace(small_stream())
        non_meta = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert non_meta[0]["ts"] == 0.0
        run = next(e for e in non_meta if e["name"] == "run AGT-RAM")
        assert run["dur"] == pytest.approx(0.9e6)

    def test_write_produces_loadable_json(self, tmp_path):
        path = write_chrome_trace(small_stream(), tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        assert doc["displayTimeUnit"] == "ms"

    def test_validate_rejects_decreasing_ts(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "i", "ts": 5.0, "pid": 1, "tid": 0, "s": "t"},
                {"name": "b", "ph": "i", "ts": 1.0, "pid": 1, "tid": 0, "s": "t"},
            ]
        }
        with pytest.raises(ValueError, match="decreases"):
            validate_chrome_trace(doc)

    def test_validate_rejects_missing_keys_and_bad_dur(self):
        with pytest.raises(ValueError, match="missing required key"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "a", "ph": "i", "ts": 0.0, "pid": 1}]}
            )
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "a", "ph": "X", "ts": 0.0, "pid": 1, "tid": 0}
                    ]
                }
            )

    def test_mechanism_stream_is_valid(self, tiny_instance):
        from repro.core.agt_ram import run_agt_ram

        with ev.capture() as sink:
            run_agt_ram(tiny_instance)
        doc = events_to_chrome_trace(sink.events)
        validate_chrome_trace(doc)
        assert len(doc["traceEvents"]) > 10


class TestOpenMetrics:
    def test_snapshot_export_lints_clean(self):
        snapshot = {
            "spans": {
                "mechanism/AGT-RAM": {"count": 3, "total_s": 0.5},
                "mechanism/AGT-RAM/round/argmax": {"count": 17, "total_s": 0.01},
            },
            "counters": {"mechanism/AGT-RAM/rounds": 17},
        }
        text = openmetrics_from_snapshot(snapshot, labels={"algorithm": "AGT-RAM"})
        assert lint_openmetrics(text) == []
        assert 'path="mechanism/AGT-RAM"' in text
        assert text.endswith("# EOF\n")

    def test_bench_export_lints_clean(self):
        doc = {
            "scale": "tiny",
            "results": [
                {
                    "scenario": "placement",
                    "algorithm": "AGT-RAM",
                    "wall_s": 0.004,
                    "savings_percent": 17.8,
                    "rounds": 17,
                    "replicas": 17,
                    "spans": {"mechanism/AGT-RAM": {"count": 1, "total_s": 0.004}},
                },
                {
                    "scenario": "protocol",
                    "algorithm": "AGT-RAM(simulated)",
                    "wall_s": 0.01,
                    "messages": 500,
                    "bytes": 12_000,
                },
            ],
        }
        text = openmetrics_from_bench(doc)
        assert lint_openmetrics(text) == []
        assert "repro_bench_messages" in text
        # Counter families are declared without the _total suffix.
        assert "# TYPE repro_span_seconds counter" in text
        assert "repro_span_seconds_total{" in text

    def test_label_escaping(self):
        text = openmetrics_from_snapshot(
            {"spans": {}, "counters": {'weird"path\\n': 1}},
        )
        assert lint_openmetrics(text) == []
        assert '\\"' in text and "\\\\" in text

    def test_lint_flags_problems(self):
        bad = "\n".join(
            [
                "# TYPE repro_x gauge",
                "# TYPE repro_x gauge",  # duplicate
                "repro_x 1.0",
                "repro_undeclared 2.0",  # no TYPE
                "repro_x not-a-number",  # bad value
                "no spaces here",  # malformed
            ]
        )  # and no trailing # EOF
        problems = lint_openmetrics(bad)
        assert any("EOF" in p for p in problems)
        assert any("duplicate TYPE" in p for p in problems)
        assert any("undeclared" in p for p in problems)
        assert len(problems) >= 4
