"""Tests for recovery accounting (MTTR, degradation budget)."""

import json

import pytest

from repro.obs import events as ev
from repro.obs.recovery import Incident, recovery_accounting


def fault(round, kind, agent=-1):
    return ev.FaultEvent(t=0.0, round=round, kind=kind, agent=agent)


def recovery(round, kind, agent=-1):
    return ev.RecoveryEvent(t=0.0, round=round, kind=kind, agent=agent)


def quarantine(round, agent, action, until=-1):
    return ev.QuarantineEvent(
        t=0.0, round=round, agent=agent, action=action, until_round=until,
    )


class TestIncidentMatching:
    def test_central_crash_and_recovery(self):
        rep = recovery_accounting(
            [
                fault(3, "central_crash"),
                recovery(5, "central"),
                ev.RunEnd(t=1.0, algorithm="x", rounds=10),
            ]
        )
        assert [i.to_dict() for i in rep.incidents] == [
            {"kind": "central_crash", "agent": -1,
             "open_round": 3, "close_round": 5}
        ]
        # Rounds 3..5 inclusive -> TTR 3.
        assert rep.mttr == 3.0
        assert rep.total_rounds == 10

    def test_agent_crashes_match_on_id(self):
        rep = recovery_accounting(
            [
                fault(1, "agent_crash", agent=4),
                fault(2, "agent_crash", agent=7),
                recovery(6, "agent", agent=7),
                recovery(3, "agent", agent=4),
            ]
        )
        by_agent = {i.agent: i for i in rep.incidents}
        assert by_agent[4].close_round == 3
        assert by_agent[7].close_round == 6

    def test_partition_and_heal(self):
        rep = recovery_accounting(
            [
                ev.PartitionEvent(t=0.0, round=2, islands=(0, 1)),
                ev.HealEvent(t=0.0, round=4, islands=(0, 1)),
            ]
        )
        (inc,) = rep.incidents
        assert (inc.kind, inc.open_round, inc.close_round) == (
            "partition", 2, 4,
        )

    def test_quarantine_release_and_expel(self):
        rep = recovery_accounting(
            [
                quarantine(1, 3, "quarantine", until=4),
                quarantine(4, 3, "release"),
                quarantine(2, 8, "quarantine", until=5),
                quarantine(6, 8, "expel"),
            ]
        )
        kinds = sorted(i.kind for i in rep.incidents)
        assert kinds == ["expulsion", "quarantine"]
        assert rep.expelled == [8]
        expel = next(i for i in rep.incidents if i.kind == "expulsion")
        assert not expel.closed  # permanent

    def test_open_incidents_become_unrecovered(self):
        rep = recovery_accounting(
            [
                fault(2, "central_crash"),
                fault(3, "agent_crash", agent=1),
                ev.PartitionEvent(t=0.0, round=4, islands=(0, 1)),
                quarantine(5, 6, "quarantine", until=99),
            ]
        )
        assert len(rep.unrecovered) == 4
        assert rep.closed == []
        assert rep.mttr == 0.0  # no closed incidents

    def test_message_faults_are_not_incidents(self):
        rep = recovery_accounting(
            [fault(1, "drop"), fault(2, "delay"), fault(3, "straggler")]
        )
        assert rep.incidents == []


class TestDegradationBudget:
    def test_degraded_rounds_union_infrastructure_only(self):
        rep = recovery_accounting(
            [
                fault(1, "central_crash"),
                recovery(3, "central"),          # degraded 1..3
                ev.PartitionEvent(t=0.0, round=2, islands=(0, 1)),
                ev.HealEvent(t=0.0, round=5, islands=(0, 1)),  # 2..5
                quarantine(0, 9, "quarantine", until=8),
                quarantine(8, 9, "release"),     # excluded from budget
                ev.RunEnd(t=1.0, algorithm="x", rounds=10),
            ]
        )
        # Union of 1..3 and 2..5 is {1,2,3,4,5}.
        assert rep.degraded_rounds == 5
        assert rep.degraded_fraction == pytest.approx(0.5)

    def test_expulsion_excluded_from_budget(self):
        rep = recovery_accounting(
            [
                quarantine(0, 2, "expel"),
                ev.RunEnd(t=1.0, algorithm="x", rounds=20),
            ]
        )
        assert rep.degraded_rounds == 0
        assert rep.unrecovered[0].kind == "expulsion"

    def test_open_infrastructure_incident_degrades_to_run_end(self):
        rep = recovery_accounting(
            [fault(6, "central_crash"),
             ev.RunEnd(t=1.0, algorithm="x", rounds=10)]
        )
        # Rounds 6..9 stay degraded.
        assert rep.degraded_rounds == 4

    def test_total_rounds_override(self):
        rep = recovery_accounting(
            [fault(1, "central_crash"), recovery(2, "central")],
            total_rounds=100,
        )
        assert rep.total_rounds == 100
        assert rep.degraded_fraction == pytest.approx(0.02)

    def test_span_fallback_without_run_end(self):
        rep = recovery_accounting(
            [fault(1, "central_crash"), recovery(7, "central")]
        )
        assert rep.total_rounds == 8  # close_round + 1


class TestReporting:
    def test_mttr_by_kind(self):
        rep = recovery_accounting(
            [
                fault(0, "central_crash"), recovery(1, "central"),   # 2
                fault(2, "agent_crash", agent=1),
                recovery(5, "agent", agent=1),                       # 4
                ev.RunEnd(t=1.0, algorithm="x", rounds=10),
            ]
        )
        assert rep.mttr_by_kind() == {
            "agent_crash": 4.0, "central_crash": 2.0,
        }
        assert rep.mttr == pytest.approx(3.0)

    def test_ttr_minimum_is_one_round(self):
        inc = Incident(kind="partition", agent=-1,
                       open_round=3, close_round=3)
        assert inc.ttr(last_round=9) == 1

    def test_to_dict_is_json_safe(self):
        rep = recovery_accounting(
            [
                fault(1, "central_crash"),
                recovery(2, "central"),
                quarantine(3, 4, "expel"),
                ev.RunEnd(t=1.0, algorithm="x", rounds=8),
            ]
        )
        d = rep.to_dict()
        json.dumps(d)
        assert d["n_incidents"] == 2
        assert d["n_unrecovered"] == 1
        assert d["expelled"] == [4]
        assert d["mttr_by_kind"]["central_crash"] == 2.0

    def test_empty_log(self):
        rep = recovery_accounting([])
        assert rep.incidents == []
        assert rep.total_rounds == 0
        assert rep.degraded_fraction == 0.0
        assert rep.mttr == 0.0
