"""Tests for the machine-readable perf harness (repro.obs.report + CLI)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.obs.report import (
    BENCH_SCALE_CONFIGS,
    SCHEMA_VERSION,
    bench_config,
    bench_scale,
    compare_documents,
    format_comparison,
    load_document,
    run_bench,
    validate_document,
    write_document,
)


@pytest.fixture(scope="module")
def tiny_doc():
    """One real bench document at the tiny scale (shared, read-only)."""
    return run_bench(
        scale="tiny",
        algorithms=["AGT-RAM", "Greedy", "Ae-Star"],
        repeats=1,
    )


class TestBenchConfig:
    def test_scales_exist(self):
        assert set(BENCH_SCALE_CONFIGS) == {"tiny", "small", "medium", "large"}

    def test_bench_config_rejects_unknown(self):
        with pytest.raises(ValueError):
            bench_config("galactic")

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert bench_scale() == "tiny"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "nope")
        with pytest.raises(ValueError):
            bench_scale()

    def test_matches_pytest_benchmark_presets(self, monkeypatch):
        # benchmarks/_config.py imports these; drift would silently split
        # the two harnesses onto different instances.
        cfg = bench_config("tiny")
        assert (cfg.n_servers, cfg.n_objects, cfg.seed) == (16, 64, 2007)


class TestRunBench:
    def test_document_is_valid_and_complete(self, tiny_doc):
        validate_document(tiny_doc)
        assert tiny_doc["schema_version"] == SCHEMA_VERSION
        algorithms = {r["algorithm"] for r in tiny_doc["results"]}
        assert {"AGT-RAM", "Greedy", "Ae-Star", "AGT-RAM(simulated)"} <= algorithms

    def test_agt_ram_record_has_phase_spans(self, tiny_doc):
        (record,) = [
            r
            for r in tiny_doc["results"]
            if r["algorithm"] == "AGT-RAM" and r["scenario"] == "placement"
        ]
        # Through the ReplicaPlacer adapter the mechanism spans nest under
        # baseline/AGT-RAM/, so match on the path suffix.
        for phase in ("bid_sweep", "argmax", "payment", "nn_broadcast"):
            suffix = f"mechanism/AGT-RAM/round/{phase}"
            assert any(
                p.endswith(suffix) for p in record["spans"]
            ), f"missing phase span *{suffix}"

    def test_baseline_records_have_spans(self, tiny_doc):
        for name in ("Greedy", "Ae-Star"):
            (record,) = [
                r for r in tiny_doc["results"] if r["algorithm"] == name
            ]
            assert record["spans"], f"{name} has no spans"
            assert any(p.startswith(f"baseline/{name}") for p in record["spans"])

    def test_protocol_record_has_message_accounting(self, tiny_doc):
        (record,) = [
            r for r in tiny_doc["results"] if r["scenario"] == "protocol"
        ]
        assert record["messages"] > 0
        assert record["bytes"] > 0
        assert "simulator/run" in record["spans"]

    def test_agt_ram_record_has_round_series(self, tiny_doc):
        (record,) = [
            r
            for r in tiny_doc["results"]
            if r["algorithm"] == "AGT-RAM" and r["scenario"] == "placement"
        ]
        series = record["series"]
        n = record["rounds"]
        for key in ("otc", "best_bid", "payment", "n_bids"):
            assert len(series[key]) == n, f"series[{key}] != rounds"
        # OTC trajectory is non-increasing (every commit lowers the OTC).
        assert all(a >= b for a, b in zip(series["otc"], series["otc"][1:]))

    def test_protocol_record_has_protocol_series(self, tiny_doc):
        (record,) = [
            r for r in tiny_doc["results"] if r["scenario"] == "protocol"
        ]
        series = record["series"]
        n = record["rounds"]
        assert len(series["messages"]) == n
        assert len(series["bytes"]) == n
        # Work is recorded per bid sweep, including the terminating one.
        assert len(series["parallel_round_work"]) == n + 1
        assert len(series["serial_round_work"]) == n + 1
        assert sum(series["messages"]) <= record["messages"]

    def test_rejects_bad_series(self, tiny_doc):
        doc = copy.deepcopy(tiny_doc)
        doc["results"][0]["series"] = {"otc": "not-a-list"}
        with pytest.raises(ValueError, match="series"):
            validate_document(doc)

    def test_v1_document_without_series_still_validates(self, tiny_doc):
        doc = copy.deepcopy(tiny_doc)
        doc["schema_version"] = 1
        for record in doc["results"]:
            record.pop("series", None)
        validate_document(doc)

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_bench(scale="tiny", repeats=0)

    def test_roundtrip_through_disk(self, tiny_doc, tmp_path):
        path = write_document(tiny_doc, tmp_path / "b.json")
        assert load_document(path) == json.loads(json.dumps(tiny_doc))


class TestValidate:
    def test_rejects_non_document(self):
        with pytest.raises(ValueError):
            validate_document(["not", "a", "doc"])
        with pytest.raises(ValueError):
            validate_document({"kind": "something-else", "schema_version": 1})

    def test_rejects_future_schema(self, tiny_doc):
        doc = copy.deepcopy(tiny_doc)
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            validate_document(doc)

    def test_rejects_malformed_results(self, tiny_doc):
        doc = copy.deepcopy(tiny_doc)
        del doc["results"][0]["wall_s"]
        with pytest.raises(ValueError, match="missing required key"):
            validate_document(doc)


class TestCompare:
    def test_flags_injected_20pct_slowdown(self, tiny_doc):
        slowed = copy.deepcopy(tiny_doc)
        for record in slowed["results"]:
            if record["algorithm"] == "AGT-RAM":
                record["wall_s"] *= 1.20
        cmp = compare_documents(tiny_doc, slowed, time_tolerance=0.15)
        flagged = {e["key"] for e in cmp["regressions"]}
        assert "placement/AGT-RAM" in flagged
        (entry,) = [
            e for e in cmp["regressions"] if e["key"] == "placement/AGT-RAM"
        ]
        assert entry["metric"] == "wall_s"
        assert entry["ratio"] == pytest.approx(1.20)
        assert "REGRESSION" in format_comparison(cmp)

    def test_identical_documents_are_clean(self, tiny_doc):
        cmp = compare_documents(tiny_doc, tiny_doc)
        assert cmp["regressions"] == []
        assert cmp["improvements"] == []

    def test_within_tolerance_not_flagged(self, tiny_doc):
        slowed = copy.deepcopy(tiny_doc)
        for record in slowed["results"]:
            record["wall_s"] *= 1.10
        cmp = compare_documents(tiny_doc, slowed, time_tolerance=0.15)
        assert cmp["regressions"] == []

    def test_speedup_reported_as_improvement(self, tiny_doc):
        faster = copy.deepcopy(tiny_doc)
        for record in faster["results"]:
            record["wall_s"] *= 0.5
        cmp = compare_documents(tiny_doc, faster, time_tolerance=0.15)
        assert cmp["regressions"] == []
        assert len(cmp["improvements"]) == len(tiny_doc["results"])

    def test_quality_drop_flagged(self, tiny_doc):
        worse = copy.deepcopy(tiny_doc)
        for record in worse["results"]:
            if record["algorithm"] == "Greedy":
                record["savings_percent"] -= 5.0
        cmp = compare_documents(tiny_doc, worse, quality_tolerance=1.0)
        assert any(
            e["metric"] == "savings_percent" and e["key"] == "placement/Greedy"
            for e in cmp["regressions"]
        )

    def test_disjoint_scenarios_reported_not_flagged(self, tiny_doc):
        pruned = copy.deepcopy(tiny_doc)
        dropped = pruned["results"].pop()
        cmp = compare_documents(tiny_doc, pruned)
        label = f"{dropped['scenario']}/{dropped['algorithm']}"
        assert label in cmp["only_in_old"]
        assert cmp["regressions"] == []

    def test_rejects_negative_tolerance(self, tiny_doc):
        with pytest.raises(ValueError):
            compare_documents(tiny_doc, tiny_doc, time_tolerance=-0.1)


class TestCli:
    def test_bench_writes_document(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(
            [
                "bench",
                "--scale",
                "tiny",
                "--repeats",
                "1",
                "--algorithms",
                "AGT-RAM",
                "Greedy",
                "--no-protocol",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        doc = load_document(out)
        assert {r["algorithm"] for r in doc["results"]} == {"AGT-RAM", "Greedy"}
        assert "wrote bench document" in capsys.readouterr().out

    def test_compare_warn_only_by_default(self, tiny_doc, tmp_path, capsys):
        old = write_document(tiny_doc, tmp_path / "old.json")
        slowed = copy.deepcopy(tiny_doc)
        for record in slowed["results"]:
            record["wall_s"] *= 1.5
        new = write_document(slowed, tmp_path / "new.json")

        rc = main(["bench", "--compare", str(old), str(new)])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "REGRESSION" in captured
        assert "warn-only" in captured

        rc = main(
            ["bench", "--compare", str(old), str(new), "--fail-on-regression"]
        )
        assert rc == 1

    def test_compare_clean_exits_zero(self, tiny_doc, tmp_path):
        old = write_document(tiny_doc, tmp_path / "old.json")
        rc = main(
            ["bench", "--compare", str(old), str(old), "--fail-on-regression"]
        )
        assert rc == 0


class TestEngineCompareRecord:
    def test_record_present_and_identical(self, tiny_doc):
        (record,) = [
            r for r in tiny_doc["results"] if r["scenario"] == "engine_compare"
        ]
        assert record["identical"] is True
        assert record["audit_ok"] is True
        assert record["mismatches"] == []
        assert record["speedup"] > 0
        assert record["naive_wall_s"] > 0
        assert record["wall_s"] > 0  # the vectorized wall

    def test_engine_recorded_in_config(self, tiny_doc):
        assert tiny_doc["config"]["engine"] == "auto"

    def test_opt_out_and_engine_override(self):
        doc = run_bench(
            scale="tiny",
            algorithms=["AGT-RAM"],
            repeats=1,
            include_protocol=False,
            engine="naive",
            include_engine_compare=False,
        )
        assert doc["config"]["engine"] == "naive"
        assert [r["scenario"] for r in doc["results"]] == ["placement"]

    def test_skipped_without_agt_ram(self):
        doc = run_bench(
            scale="tiny",
            algorithms=["Greedy"],
            repeats=1,
            include_protocol=False,
        )
        assert not any(
            r["scenario"] == "engine_compare" for r in doc["results"]
        )

    def test_old_baseline_without_record_compares_clean(self, tiny_doc):
        old = copy.deepcopy(tiny_doc)
        old["results"] = [
            r for r in old["results"] if r["scenario"] != "engine_compare"
        ]
        cmp = compare_documents(old, tiny_doc)
        assert cmp["regressions"] == []
        assert cmp["only_in_new"] == ["engine_compare/AGT-RAM"]

    def test_cli_engine_flag(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = main(
            [
                "bench",
                "--scale",
                "tiny",
                "--repeats",
                "1",
                "--algorithms",
                "AGT-RAM",
                "--engine",
                "naive",
                "--no-protocol",
                "--no-engine-compare",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert load_document(out)["config"]["engine"] == "naive"

    def test_cli_prints_engine_compare_line(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(
            [
                "bench",
                "--scale",
                "tiny",
                "--repeats",
                "1",
                "--algorithms",
                "AGT-RAM",
                "--no-protocol",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert "engine compare:" in capsys.readouterr().out
