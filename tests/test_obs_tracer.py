"""Unit tests for the repro.obs tracing core."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import NULL_TRACER, Tracer, capture, current, install
from repro.obs.tracer import _NULL_SPAN, SpanStat


class TestSpanStat:
    def test_aggregates(self):
        stat = SpanStat()
        stat.record(0.5)
        stat.record(1.5)
        stat.record(1.0)
        assert stat.count == 3
        assert stat.total_s == pytest.approx(3.0)
        assert stat.min_s == pytest.approx(0.5)
        assert stat.max_s == pytest.approx(1.5)
        assert stat.to_dict()["mean_s"] == pytest.approx(1.0)

    def test_empty_dict_has_zero_min(self):
        d = SpanStat().to_dict()
        assert d["count"] == 0
        assert d["min_s"] == 0.0
        assert d["mean_s"] == 0.0


class TestTracer:
    def test_span_records_count_and_time(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("work"):
                time.sleep(0.001)
        stat = tracer.spans["work"]
        assert stat.count == 3
        assert stat.total_s >= 0.003

    def test_nested_spans_build_hierarchical_paths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert set(tracer.spans) == {"outer", "outer/inner"}
        assert tracer.spans["outer/inner"].count == 2
        assert tracer.spans["outer"].count == 1

    def test_add_respects_current_prefix(self):
        tracer = Tracer()
        tracer.add("loose", 0.25)
        with tracer.span("run"):
            tracer.add("phase", 0.5)
            tracer.add("phase", 0.25)
        assert tracer.total("loose") == pytest.approx(0.25)
        assert tracer.total("run/phase") == pytest.approx(0.75)
        assert tracer.total("missing") == 0.0

    def test_counters_prefix_and_accumulate(self):
        tracer = Tracer()
        tracer.count("events")
        tracer.count("events", 4)
        with tracer.span("run"):
            tracer.count("rounds", 7)
        assert tracer.counters == {"events": 5, "run/rounds": 7}

    def test_reset_clears_but_refuses_open_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.count("c")
            with pytest.raises(RuntimeError):
                tracer.reset()
        tracer.reset()
        assert tracer.spans == {}
        assert tracer.counters == {}

    def test_snapshot_is_json_serializable(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.add("b", 0.1)
            tracer.count("c", 2)
        snap = json.loads(json.dumps(tracer.snapshot()))
        assert snap["spans"]["a/b"]["count"] == 1
        assert snap["counters"]["a/c"] == 2


class TestDisabledMode:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work"):
            tracer.add("phase", 1.0)
            tracer.count("n")
        assert tracer.spans == {}
        assert tracer.counters == {}

    def test_disabled_span_is_shared_singleton(self):
        # The no-op path must not allocate per call.
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b") is _NULL_SPAN

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestRegistry:
    def test_default_current_is_null(self):
        assert current() is NULL_TRACER

    def test_capture_installs_and_restores(self):
        before = current()
        with capture() as tracer:
            assert current() is tracer
            assert tracer.enabled
        assert current() is before

    def test_capture_accepts_existing_tracer(self):
        mine = Tracer()
        with capture(mine) as tracer:
            assert tracer is mine

    def test_capture_restores_on_exception(self):
        before = current()
        with pytest.raises(ValueError):
            with capture():
                raise ValueError("boom")
        assert current() is before

    def test_install_returns_previous_and_none_restores_null(self):
        mine = Tracer()
        previous = install(mine)
        try:
            assert current() is mine
        finally:
            assert install(None) is mine
        assert current() is NULL_TRACER


class TestConcurrency:
    def test_captures_in_separate_threads_are_isolated(self):
        import threading

        results: dict[str, object] = {}
        barrier = threading.Barrier(2)

        def worker(name: str) -> None:
            with capture() as tracer:
                barrier.wait(timeout=5)  # both captures active at once
                current().count("hits")
                barrier.wait(timeout=5)
                results[name] = (current() is tracer, dict(tracer.counters))

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert current() is NULL_TRACER
        for saw_own, counters in results.values():
            assert saw_own
            assert counters == {"hits": 1}

    def test_parallel_evaluator_workers_see_callers_tracer(self, tiny_instance):
        from repro.core.agents import ReplicaAgent
        from repro.drp.benefit import BenefitEngine
        from repro.drp.state import ReplicationState

        class CountingAgent(ReplicaAgent):
            def make_bid(self, engine):
                current().count("worker_saw_tracer")
                return super().make_bid(engine)

        from repro.runtime.parallel import ParallelBidEvaluator

        state = ReplicationState(tiny_instance)
        engine = BenefitEngine(tiny_instance, state)
        agents = [CountingAgent(server=i) for i in range(tiny_instance.n_servers)]
        with ParallelBidEvaluator(max_workers=4) as evaluator:
            with capture() as tracer:
                evaluator.evaluate(agents, engine)
        assert tracer.counters["worker_saw_tracer"] == tiny_instance.n_servers

    def test_parallel_evaluator_workers_see_callers_event_sink(self, tiny_instance):
        from repro.core.agents import ReplicaAgent
        from repro.drp.benefit import BenefitEngine
        from repro.drp.state import ReplicationState
        from repro.obs import events as ev
        from repro.runtime.parallel import ParallelBidEvaluator

        class EmittingAgent(ReplicaAgent):
            def make_bid(self, engine):
                sink = ev.current()
                if sink.enabled:
                    sink.emit(ev.BidEvent(t=ev.now(), agent=self.server))
                return super().make_bid(engine)

        state = ReplicationState(tiny_instance)
        engine = BenefitEngine(tiny_instance, state)
        agents = [EmittingAgent(server=i) for i in range(tiny_instance.n_servers)]
        with ParallelBidEvaluator(max_workers=4) as evaluator:
            with ev.capture() as sink:
                evaluator.evaluate(agents, engine)
        assert len(sink.events) == tiny_instance.n_servers


class TestLibraryIntegration:
    def test_agt_ram_emits_round_phases(self, tiny_instance):
        from repro.core.agt_ram import run_agt_ram

        with capture() as tracer:
            result = run_agt_ram(tiny_instance)
        spans = tracer.snapshot()["spans"]
        assert "mechanism/AGT-RAM" in spans
        for phase in ("bid_sweep", "argmax", "payment", "nn_broadcast"):
            path = f"mechanism/AGT-RAM/round/{phase}"
            assert path in spans, f"missing phase span {path}"
        counters = tracer.snapshot()["counters"]
        assert counters["mechanism/AGT-RAM/rounds"] == result.rounds

    def test_tracing_does_not_change_results(self, tiny_instance):
        from repro.core.agt_ram import run_agt_ram

        plain = run_agt_ram(tiny_instance)
        with capture():
            traced = run_agt_ram(tiny_instance)
        assert traced.otc == pytest.approx(plain.otc)
        assert traced.rounds == plain.rounds

    def test_baselines_emit_spans(self, tiny_instance):
        from repro.baselines.base import make_placer

        with capture() as tracer:
            make_placer("Greedy").place(tiny_instance)
            make_placer("Ae-Star").place(tiny_instance)
        spans = tracer.snapshot()["spans"]
        assert "baseline/Greedy" in spans
        assert "baseline/Greedy/select" in spans
        assert "baseline/Ae-Star" in spans
        assert "baseline/Ae-Star/candidates" in spans

    def test_simulator_emits_round_phases(self, tiny_instance):
        from repro.runtime.simulator import SemiDistributedSimulator

        with capture() as tracer:
            SemiDistributedSimulator().run(tiny_instance)
        spans = tracer.snapshot()["spans"]
        assert "simulator/run" in spans
        for phase in ("bid_sweep", "decision", "broadcast", "nn_update"):
            assert f"simulator/run/round/{phase}" in spans
