"""Property-based safety net over every baseline algorithm.

Whatever a placement method does internally, four things must hold on
*any* instance: the scheme is feasible, primaries survive, OTC never
exceeds the primaries-only baseline by more than float noise (no method
is allowed to actively hurt), and the result record is self-consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.aestar import AEStarPlacer
from repro.baselines.dutch import DutchAuctionPlacer
from repro.baselines.english import EnglishAuctionPlacer
from repro.baselines.gra import GRAPlacer
from repro.baselines.greedy import GreedyPlacer
from repro.baselines.random_placement import RandomPlacer
from repro.drp.cost import primary_only_otc, total_otc
from repro.drp.feasibility import check_state

from _strategies import drp_instances

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def make_placers(seed):
    return [
        GreedyPlacer(),
        AEStarPlacer(node_budget=20),
        GRAPlacer(population_size=6, generations=3, seed=seed),
        DutchAuctionPlacer(seed=seed),
        EnglishAuctionPlacer(seed=seed),
    ]


class TestBaselineSafetyNet:
    @given(drp_instances(), seeds)
    @settings(max_examples=15, deadline=None)
    def test_all_placers_produce_feasible_schemes(self, inst, seed):
        for placer in make_placers(seed):
            res = placer.place(inst)
            check_state(res.state)

    @given(drp_instances(), seeds)
    @settings(max_examples=15, deadline=None)
    def test_no_placer_hurts_the_system(self, inst, seed):
        baseline = primary_only_otc(inst)
        # RandomPlacer is excluded: random fills may legitimately raise
        # OTC on write-heavy instances (it is the sanity floor, not a
        # real method).
        for placer in make_placers(seed):
            res = placer.place(inst)
            assert res.otc <= baseline * (1 + 1e-9) + 1e-6, placer.name

    @given(drp_instances(), seeds)
    @settings(max_examples=15, deadline=None)
    def test_result_records_consistent(self, inst, seed):
        for placer in make_placers(seed) + [RandomPlacer(seed=seed)]:
            res = placer.place(inst)
            assert res.algorithm == placer.name
            assert res.otc == pytest.approx(total_otc(res.state))
            assert res.replicas_allocated == res.state.total_replicas()
            assert res.runtime_s >= 0.0
