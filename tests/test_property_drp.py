"""Property-based tests (hypothesis) for the DRP cost model.

These pin down the algebraic invariants every algorithm relies on:

* global benefit == exact ΔOTC for arbitrary instances and states,
* OTC is non-negative and additive in object size,
* NN tables stay exact under arbitrary feasible allocation sequences,
* the local CoR never exceeds the global benefit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drp.benefit import BenefitEngine, global_benefit
from repro.drp.cost import otc_of_matrix, primary_only_otc, total_otc
from repro.drp.feasibility import check_state
from repro.drp.instance import DRPInstance
from repro.drp.state import ReplicationState

from _strategies import drp_instances


def random_feasible_state(instance: DRPInstance, seed: int) -> ReplicationState:
    rng = np.random.default_rng(seed)
    st_ = ReplicationState.primaries_only(instance)
    cells = rng.permutation(instance.n_servers * instance.n_objects)
    for flat in cells[: len(cells) // 2]:
        i, k = divmod(int(flat), instance.n_objects)
        if st_.can_host(i, k):
            st_.add_replica(i, k)
    return st_


class TestCostProperties:
    @given(drp_instances())
    @settings(max_examples=40, deadline=None)
    def test_primary_only_nonnegative(self, inst):
        assert primary_only_otc(inst) >= 0.0

    @given(drp_instances(), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_state_invariants_hold(self, inst, seed):
        state = random_feasible_state(inst, seed)
        check_state(state)

    @given(drp_instances(), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_otc_of_matrix_matches_state(self, inst, seed):
        state = random_feasible_state(inst, seed)
        assert otc_of_matrix(inst, state.x) == pytest.approx(
            total_otc(state), rel=1e-9, abs=1e-6
        )

    @given(drp_instances(), st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_global_benefit_is_exact_delta(self, inst, seed, pick):
        state = random_feasible_state(inst, seed)
        rng = np.random.default_rng(pick)
        for _ in range(10):
            i = int(rng.integers(inst.n_servers))
            k = int(rng.integers(inst.n_objects))
            if state.can_host(i, k):
                g = global_benefit(inst, state, i, k)
                before = total_otc(state)
                probe = state.copy()
                probe.add_replica(i, k)
                assert before - total_otc(probe) == pytest.approx(
                    g, rel=1e-9, abs=1e-6
                )
                return

    @given(drp_instances(), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_local_benefit_lower_bounds_global(self, inst, seed):
        state = random_feasible_state(inst, seed)
        engine = BenefitEngine(inst, state)
        for i in range(inst.n_servers):
            for k in range(inst.n_objects):
                if np.isfinite(engine.matrix[i, k]):
                    g = global_benefit(inst, state, i, k)
                    assert g >= engine.matrix[i, k] - 1e-6

    @given(drp_instances(), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_nn_dist_never_increases(self, inst, seed):
        rng = np.random.default_rng(seed)
        state = ReplicationState.primaries_only(inst)
        prev = state.nn_dist.copy()
        for flat in rng.permutation(inst.n_servers * inst.n_objects)[:12]:
            i, k = divmod(int(flat), inst.n_objects)
            if state.can_host(i, k):
                state.add_replica(i, k)
                assert (state.nn_dist <= prev + 1e-12).all()
                prev = state.nn_dist.copy()

    @given(drp_instances())
    @settings(max_examples=30, deadline=None)
    def test_read_cost_zero_when_fully_replicated(self, inst):
        from repro.drp.cost import otc_breakdown

        state = ReplicationState.primaries_only(inst)
        # Fill every cell capacity allows.
        for i in range(inst.n_servers):
            for k in range(inst.n_objects):
                if state.can_host(i, k):
                    state.add_replica(i, k)
        b = otc_breakdown(state)
        replicated_everywhere = state.x.all()
        if replicated_everywhere:
            assert b.read_cost == pytest.approx(0.0)
