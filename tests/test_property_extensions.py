"""Property-based tests for the hierarchical and adaptive extensions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveReplicator
from repro.core.hierarchical import HierarchicalAGTRam, partition_by_proximity
from repro.drp.feasibility import check_state
from repro.workload.drift import drifting_workloads

from _strategies import drp_instances

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestHierarchicalProperties:
    @given(drp_instances(), st.integers(1, 4), seeds)
    @settings(max_examples=20, deadline=None)
    def test_concurrent_always_feasible(self, inst, n_regions, seed):
        n_regions = min(n_regions, inst.n_servers)
        res = HierarchicalAGTRam(
            n_regions=n_regions, mode="concurrent", seed=seed
        ).run(inst)
        check_state(res.state)

    @given(drp_instances(), st.integers(1, 4), seeds)
    @settings(max_examples=15, deadline=None)
    def test_sequential_matches_flat(self, inst, n_regions, seed):
        from repro.core.agt_ram import run_agt_ram

        n_regions = min(n_regions, inst.n_servers)
        seq = HierarchicalAGTRam(
            n_regions=n_regions, mode="sequential", seed=seed
        ).run(inst)
        flat = run_agt_ram(inst)
        assert np.array_equal(seq.state.x, flat.state.x)

    @given(drp_instances(), seeds)
    @settings(max_examples=20, deadline=None)
    def test_partition_covers_all_servers(self, inst, seed):
        n_regions = min(3, inst.n_servers)
        part = partition_by_proximity(inst, n_regions, seed=seed)
        assert part.shape == (inst.n_servers,)
        assert part.min() >= 0 and part.max() < n_regions

    @given(drp_instances(), seeds)
    @settings(max_examples=15, deadline=None)
    def test_failure_keeps_system_sound(self, inst, seed):
        # A failed region may, on odd instances, *improve* savings (its
        # small-benefit grabs can pre-empt others' better moves), so no
        # ordering vs the healthy run is asserted — only soundness: the
        # degraded system stays feasible, non-harmful, and allocates
        # nothing in the dead region.
        n_regions = min(3, inst.n_servers)
        degraded = HierarchicalAGTRam(
            n_regions=n_regions, mode="concurrent", seed=seed, failed_regions=[0]
        ).run(inst)
        check_state(degraded.state)
        assert degraded.savings_percent >= -1e-6
        part = degraded.extra["partition"]
        dead = np.flatnonzero(part == 0)
        extra = degraded.state.x.copy()
        extra[inst.primaries, np.arange(inst.n_objects)] = False
        assert not extra[dead].any()


class TestAdaptiveProperties:
    @given(st.integers(0, 10_000), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_all_policies_feasible_every_epoch(self, seed, n_epochs):
        from repro.drp.instance import build_instance
        from repro.topology import random_graph
        from repro.workload.synthetic import synthesize_workload

        m, n = 8, 20
        topo = random_graph(m, 0.5, seed=seed)
        w = synthesize_workload(m, n, total_requests=2_000, rw_ratio=0.9, seed=seed)
        template = build_instance(topo, w, capacity_fraction=0.4, seed=seed)
        epochs = drifting_workloads(
            m, n, n_epochs, total_requests=2_000, rw_ratio=0.9, seed=seed
        )
        for policy in ("adaptive", "static", "rebuild"):
            out = AdaptiveReplicator(policy=policy).run(template, epochs)
            assert len(out) == n_epochs
            for o in out:
                assert o.replicas >= 0
                assert o.migration_volume >= 0.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_adaptive_epoch_savings_never_negative(self, seed):
        from repro.drp.instance import build_instance
        from repro.topology import random_graph
        from repro.workload.synthetic import synthesize_workload

        m, n = 8, 20
        topo = random_graph(m, 0.5, seed=seed)
        w = synthesize_workload(m, n, total_requests=2_000, rw_ratio=0.9, seed=seed)
        template = build_instance(topo, w, capacity_fraction=0.4, seed=seed)
        epochs = drifting_workloads(
            m, n, 3, total_requests=2_000, rw_ratio=0.9, drift_fraction=0.4,
            seed=seed,
        )
        out = AdaptiveReplicator(policy="adaptive").run(template, epochs)
        # Eviction removes negative-keep replicas and reallocation only
        # adds positive-benefit ones, so every epoch ends no worse than
        # its primaries-only baseline.
        for o in out:
            assert o.savings_percent >= -1e-6
