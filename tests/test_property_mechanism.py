"""Property-based tests for the mechanism layer.

The payment rule's dominant-strategy property is checked on arbitrary
bid vectors (not just ones arising from DRP instances), and the
mechanism itself is run on random instances to confirm axioms and
feasibility hold unconditionally.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agt_ram import run_agt_ram
from repro.core.axioms import verify_axioms
from repro.core.payments import second_best_payment
from repro.drp.feasibility import check_state

from _strategies import drp_instances

finite_bids = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=2,
    max_size=12,
)


class TestSecondPriceProperties:
    @given(finite_bids)
    @settings(max_examples=100, deadline=None)
    def test_payment_independent_of_winner_bid(self, bids):
        winner = int(np.argmax(bids))
        p1 = second_best_payment(bids, winner)
        inflated = list(bids)
        inflated[winner] = inflated[winner] * 2 + 1
        assert second_best_payment(inflated, winner) == p1

    @given(finite_bids)
    @settings(max_examples=100, deadline=None)
    def test_truthful_winner_utility_nonnegative(self, bids):
        winner = int(np.argmax(bids))
        pay = second_best_payment(bids, winner)
        assert bids[winner] - pay >= -1e-12

    @given(finite_bids, st.floats(min_value=1.01, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_overbid_never_profits_one_shot(self, bids, factor):
        """Classic one-shot Vickrey dominance on arbitrary bid vectors."""
        bids = np.asarray(bids)
        agent = 0
        true_value = bids[agent]

        def play(report: float) -> float:
            declared = bids.copy()
            declared[agent] = report
            winner = int(np.argmax(declared))
            if winner != agent:
                return 0.0
            return true_value - second_best_payment(declared, agent)

        assert play(true_value * factor) <= play(true_value) + 1e-9


class TestMechanismProperties:
    @given(drp_instances())
    @settings(max_examples=20, deadline=None)
    def test_axioms_hold_on_random_instances(self, inst):
        res = run_agt_ram(inst, record_audit=True)
        checks = verify_axioms(inst, res)
        for name, check in checks.items():
            assert check.passed, f"{name}: {check.detail}"

    @given(drp_instances())
    @settings(max_examples=20, deadline=None)
    def test_final_state_always_feasible(self, inst):
        check_state(run_agt_ram(inst).state)

    @given(drp_instances())
    @settings(max_examples=20, deadline=None)
    def test_savings_never_negative(self, inst):
        # AGT-RAM only ever accepts positive-local-benefit moves, and
        # local benefit lower-bounds ΔOTC, so savings are non-negative.
        res = run_agt_ram(inst)
        assert res.savings_percent >= -1e-9

    @given(drp_instances())
    @settings(max_examples=20, deadline=None)
    def test_greedy_roughly_dominates_agt_ram(self, inst):
        # Greedy sees exact ΔOTC yet is myopic: committing the single
        # best placement can foreclose better combinations that AGT-RAM's
        # agent-by-agent dynamics happen to reach, so inversions close to
        # 10% occur on small instances (hypothesis finds them).  The
        # margin bounds the inversion without asserting false dominance.
        from repro.baselines.greedy import GreedyPlacer

        agt = run_agt_ram(inst)
        greedy = GreedyPlacer().place(inst)
        assert greedy.otc <= agt.otc * 1.25 + 1e-6
