"""Property tests: the payment rules stay total and sane under
adversarial bid vectors — ties at the top, zero/negative reports,
single-bidder rounds, NaN/±inf garbage (satellite of the Byzantine PR).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.payments import (
    first_price_payment,
    second_best_payment,
    winner_utility,
)

# Any float the wire could carry, garbage included.
any_value = st.floats(allow_nan=True, allow_infinity=True, width=64)
# A value an honest (finite) bidder could report.
finite_value = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-1e12, max_value=1e12,
)

bid_vectors = st.lists(any_value, min_size=1, max_size=12)


class TestSecondPriceTotality:
    @given(reported=bid_vectors, data=st.data())
    @settings(max_examples=300)
    def test_always_finite_and_nonnegative(self, reported, data):
        winner = data.draw(st.integers(0, len(reported) - 1))
        price = second_best_payment(reported, winner)
        assert math.isfinite(price)
        assert price >= 0.0

    @given(reported=st.lists(finite_value, min_size=2, max_size=12))
    @settings(max_examples=300)
    def test_never_exceeds_winners_bid_at_argmax(self, reported):
        # When the winner really is the argmax (the only way the
        # mechanism calls the rule), the Vickrey price cannot exceed
        # the winning bid.
        winner = int(np.argmax(reported))
        price = second_best_payment(reported, winner)
        assert price <= max(reported[winner], 0.0)

    @given(reported=st.lists(finite_value, min_size=2, max_size=12))
    @settings(max_examples=300)
    def test_price_is_best_rival_bid(self, reported):
        winner = int(np.argmax(reported))
        rivals = [v for i, v in enumerate(reported) if i != winner]
        expected = max(max(rivals), 0.0)
        assert second_best_payment(reported, winner) == expected

    @given(value=any_value)
    def test_single_bidder_pays_reserve(self, value):
        assert second_best_payment([value], 0) == 0.0

    @given(reported=st.lists(finite_value, min_size=2, max_size=12),
           data=st.data())
    @settings(max_examples=200)
    def test_garbage_rivals_never_poison_the_price(self, reported, data):
        # Splicing NaN/±inf reports into the vector must not change the
        # price: non-finite reports are non-participation.
        winner = int(np.argmax(reported))
        clean = second_best_payment(reported, winner)
        garbage = data.draw(
            st.lists(
                st.sampled_from([float("nan"), float("inf"), float("-inf")]),
                min_size=1, max_size=4,
            )
        )
        spliced = list(reported) + garbage
        assert second_best_payment(spliced, winner) == clean

    @given(reported=st.lists(finite_value, min_size=2, max_size=12))
    @settings(max_examples=200)
    def test_tie_at_top_prices_at_the_tied_value(self, reported):
        # Duplicate the maximum: with two agents tied at the top, the
        # winner pays exactly the tied (second) value.
        top = max(reported)
        tied = list(reported) + [top]
        winner = int(np.argmax(tied))
        assert second_best_payment(tied, winner) == max(top, 0.0)

    @given(reported=st.lists(
        st.floats(max_value=0.0, allow_nan=False, allow_infinity=False,
                  width=64),
        min_size=1, max_size=8,
    ), data=st.data())
    def test_all_nonpositive_reports_price_zero_or_best(self, reported, data):
        winner = data.draw(st.integers(0, len(reported) - 1))
        # Negative "best rival" clamps to the zero reserve.
        assert second_best_payment(reported, winner) >= 0.0

    @given(reported=bid_vectors, winner=st.integers())
    def test_out_of_range_winner_raises(self, reported, winner):
        if 0 <= winner < len(reported):
            return
        with pytest.raises(IndexError):
            second_best_payment(reported, winner)


class TestFirstPriceAndUtility:
    @given(reported=st.lists(finite_value, min_size=1, max_size=8),
           data=st.data())
    def test_first_price_is_own_bid_clamped(self, reported, data):
        winner = data.draw(st.integers(0, len(reported) - 1))
        assert first_price_payment(reported, winner) == max(
            0.0, reported[winner]
        )

    @given(value=st.sampled_from(
        [float("nan"), float("inf"), float("-inf")]
    ))
    def test_first_price_rejects_nonfinite_winner(self, value):
        with pytest.raises(ValueError):
            first_price_payment([value], 0)

    @given(true_value=finite_value,
           rivals=st.lists(finite_value, min_size=1, max_size=8))
    @settings(max_examples=300)
    def test_truthful_winner_never_regrets(self, true_value, rivals):
        # Theorem 5's direction of the dominance argument: if the
        # truthful bid wins, the price is a rival's bid <= the true
        # value, so utility is non-negative.
        reported = [true_value] + rivals
        if int(np.argmax(reported)) != 0:
            return
        price = second_best_payment(reported, 0)
        assert winner_utility(true_value, price) >= 0.0 or true_value < 0.0
