"""Property fuzzing of the protocol simulator's option space.

Random instances x random option combinations (lazy NN cadence, agent
failures, central failure, strategies, thread pool): whatever the
configuration, the simulator must terminate with a feasible scheme,
non-negative savings for truthful play, and a coherent message log.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies import OverProjection, UnderProjection
from repro.drp.feasibility import check_state
from repro.runtime.simulator import SemiDistributedSimulator

from _strategies import drp_instances

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def simulator_options(draw):
    opts = {}
    opts["nn_update_period"] = draw(st.sampled_from([1, 2, 5, 9]))
    if draw(st.booleans()):
        opts["central_failure_round"] = draw(st.integers(0, 5))
    if draw(st.booleans()):
        opts["max_workers"] = draw(st.sampled_from([2, 4]))
    return opts


class TestSimulatorFuzz:
    @given(drp_instances(), simulator_options(), seeds)
    @settings(max_examples=20, deadline=None)
    def test_always_sound(self, inst, opts, seed):
        rng = np.random.default_rng(seed)
        failed = set(
            int(x)
            for x in rng.choice(
                inst.n_servers,
                size=min(inst.n_servers - 1, int(rng.integers(0, 3))),
                replace=False,
            )
        )
        sim = SemiDistributedSimulator(failed_agents=failed, **opts)
        res = sim.run(inst)
        check_state(res.state)
        assert res.savings_percent >= -1e-6
        metrics = res.extra["metrics"]
        # Message-log coherence: one payment per allocation round.
        assert metrics.log.counts.get("PaymentMessage", 0) == metrics.rounds
        assert metrics.log.bytes_total >= 0

    @given(drp_instances(), seeds)
    @settings(max_examples=15, deadline=None)
    def test_strategies_never_break_feasibility(self, inst, seed):
        rng = np.random.default_rng(seed)
        strategies = {}
        for agent in range(0, inst.n_servers, 2):
            strategies[agent] = (
                OverProjection(2.0) if rng.random() < 0.5 else UnderProjection(0.5)
            )
        res = SemiDistributedSimulator(strategies=strategies).run(inst)
        check_state(res.state)

    @given(drp_instances())
    @settings(max_examples=15, deadline=None)
    def test_lazy_nn_matches_eager_replica_budget(self, inst):
        # Lazy views may choose different cells, but both protocols are
        # bounded by the same capacity and only allocate eligible cells.
        eager = SemiDistributedSimulator(nn_update_period=1).run(inst)
        lazy = SemiDistributedSimulator(nn_update_period=7).run(inst)
        cap = inst.replica_headroom().sum()
        for res in (eager, lazy):
            used = (res.state.used - inst.primary_load).sum()
            assert used <= cap
