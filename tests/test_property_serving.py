"""Property tests for the serving policies and router failover.

Backoff: for any policy and any attempt, the jittered delay is
non-negative, bounded by the cap, monotone (un-jittered) in the
attempt number, and a pure function of the seed.  Router: failover
never selects a crashed (excluded) replica, and when every non-primary
replica is down the primary — which can never drop its copy — still
serves.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drp.state import ReplicationState
from repro.serving import BackoffPolicy, RequestRouter

from _strategies import drp_instances

seeds = st.integers(min_value=0, max_value=2**31 - 1)
attempts = st.integers(min_value=1, max_value=12)


@st.composite
def backoff_policies(draw):
    base = draw(st.floats(0.0, 10.0, allow_nan=False))
    factor = draw(st.floats(1.0, 4.0, allow_nan=False))
    cap = draw(st.floats(0.0, 50.0, allow_nan=False))
    jitter = draw(st.floats(0.0, 1.0, allow_nan=False))
    return BackoffPolicy(base=base, factor=factor, cap=cap, jitter=jitter)


class TestBackoffProperties:
    @given(backoff_policies(), attempts, seeds)
    @settings(max_examples=200, deadline=None)
    def test_delay_bounded_and_non_negative(self, policy, attempt, seed):
        d = policy.delay(attempt, np.random.default_rng(seed))
        assert 0.0 <= d <= policy.cap
        assert d <= policy.raw_delay(attempt)

    @given(backoff_policies(), attempts)
    @settings(max_examples=100, deadline=None)
    def test_raw_delay_monotone_until_cap(self, policy, attempt):
        assert policy.raw_delay(attempt) <= policy.raw_delay(attempt + 1)
        assert policy.raw_delay(attempt) <= policy.cap

    @given(backoff_policies(), attempts, seeds)
    @settings(max_examples=100, deadline=None)
    def test_deterministic_per_seed(self, policy, attempt, seed):
        d1 = policy.delay(attempt, np.random.default_rng(seed))
        d2 = policy.delay(attempt, np.random.default_rng(seed))
        assert d1 == d2


@st.composite
def placements(draw):
    """A random instance plus a random feasible-by-construction
    replication state (primaries plus whatever extra copies fit)."""
    instance = draw(drp_instances())
    state = ReplicationState.primaries_only(instance)
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, instance.n_servers - 1),
                st.integers(0, instance.n_objects - 1),
            ),
            max_size=8,
        )
    )
    for server, obj in extra:
        try:
            state.add_replica(server, obj)
        except Exception:
            pass  # already present or over capacity — skip
    return instance, state


class TestRouterProperties:
    @given(placements(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_never_selects_crashed_replica(self, placed, data):
        instance, state = placed
        router = RequestRouter(instance, state)
        origin = data.draw(st.integers(0, instance.n_servers - 1))
        obj = data.draw(st.integers(0, instance.n_objects - 1))
        crashed = data.draw(
            st.sets(st.integers(0, instance.n_servers - 1), max_size=4)
        )
        target = router.route_read(origin, obj, exclude=crashed)
        if target >= 0:
            assert target not in crashed
            assert state.x[target, obj]
        else:
            live = set(int(s) for s in state.replica_set(obj)) - crashed
            assert not live

    @given(placements(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_primary_serves_when_all_replicas_down(self, placed, data):
        instance, state = placed
        router = RequestRouter(instance, state)
        origin = data.draw(st.integers(0, instance.n_servers - 1))
        obj = data.draw(st.integers(0, instance.n_objects - 1))
        primary = int(instance.primaries[obj])
        others = set(int(s) for s in state.replica_set(obj)) - {primary}
        target = router.route_read(origin, obj, exclude=others)
        assert target == primary

    @given(placements(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_candidates_sorted_by_cost(self, placed, data):
        instance, state = placed
        router = RequestRouter(instance, state)
        origin = data.draw(st.integers(0, instance.n_servers - 1))
        obj = data.draw(st.integers(0, instance.n_objects - 1))
        cands = router.read_candidates(origin, obj)
        costs = [instance.cost[origin, s] for s in cands]
        assert costs == sorted(costs)
