"""Property-based tests for the topology and workload substrates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import cost_matrix, powerlaw_graph, random_graph, waxman_graph
from repro.workload.stats import aggregate_trace, trace_to_matrices
from repro.workload.synthetic import synthesize_workload
from repro.workload.worldcup import WorldCupLogGenerator, parse_common_log
from repro.workload.zipf import zipf_weights

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestTopologyProperties:
    @given(st.integers(3, 30), st.floats(0.0, 1.0), seeds)
    @settings(max_examples=30, deadline=None)
    def test_random_graph_always_connected(self, n, p, seed):
        assert random_graph(n, p, seed=seed).is_connected()

    @given(st.integers(3, 25), seeds)
    @settings(max_examples=20, deadline=None)
    def test_waxman_always_connected(self, n, seed):
        assert waxman_graph(n, seed=seed).is_connected()

    @given(st.integers(4, 40), st.integers(1, 3), seeds)
    @settings(max_examples=20, deadline=None)
    def test_powerlaw_always_connected(self, n, m, seed):
        if n <= m:
            return
        assert powerlaw_graph(n, m, seed=seed).is_connected()

    @given(st.integers(3, 20), st.floats(0.2, 0.9), seeds)
    @settings(max_examples=20, deadline=None)
    def test_cost_matrix_is_metric(self, n, p, seed):
        c = cost_matrix(random_graph(n, p, seed=seed))
        assert np.array_equal(c, c.T)
        assert (np.diag(c) == 0).all()
        via = (c[:, :, None] + c[None, :, :]).min(axis=1)
        assert np.all(c <= via + 1e-9)

    @given(st.integers(3, 20), seeds)
    @settings(max_examples=20, deadline=None)
    def test_cost_bounded_by_direct_link(self, n, seed):
        topo = random_graph(n, 0.5, seed=seed)
        c = cost_matrix(topo)
        for u, v, w in topo.iter_edges():
            assert c[u, v] <= w + 1e-9


class TestWorkloadProperties:
    @given(st.integers(1, 500), st.floats(0.1, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_zipf_weights_valid_distribution(self, n, alpha):
        w = zipf_weights(n, alpha)
        assert w.sum() == pytest.approx(1.0)
        assert (w > 0).all()
        assert (np.diff(w) <= 1e-15).all()

    @given(
        st.integers(2, 15),
        st.integers(2, 30),
        st.integers(0, 20_000),
        st.floats(0.0, 1.0),
        seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_synthetic_workload_well_formed(self, m, n, total, rw, seed):
        w = synthesize_workload(m, n, total_requests=total, rw_ratio=rw, seed=seed)
        assert (w.reads >= 0).all() and (w.writes >= 0).all()
        assert (w.sizes >= 1).all()
        assert w.reads.shape == (m, n)

    @given(st.integers(1, 2000), seeds)
    @settings(max_examples=15, deadline=None)
    def test_log_roundtrip_preserves_request_count(self, n_requests, seed):
        gen = WorldCupLogGenerator(n_objects=30, n_clients=8, seed=seed)
        lines = list(gen.generate_log(n_requests))
        assert len(lines) == n_requests
        if n_requests:
            trace = parse_common_log(lines)
            assert len(trace) == n_requests

    @given(st.integers(1, 400), st.integers(2, 8), seeds)
    @settings(max_examples=15, deadline=None)
    def test_aggregation_conserves_mass(self, n_requests, n_servers, seed):
        gen = WorldCupLogGenerator(n_objects=20, n_clients=6, seed=seed)
        trace = gen.sample_trace(n_requests)
        agg = aggregate_trace(trace)
        assert agg.total_requests() == n_requests
        rng = np.random.default_rng(seed)
        mapping = rng.integers(0, n_servers, size=trace.n_clients)
        reads, writes = trace_to_matrices(trace, mapping, n_servers)
        assert reads.sum() + writes.sum() == n_requests
