"""Tests for multi-seed replication and the ASCII chart renderer."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import replicate_comparison
from repro.utils.ascii_chart import ascii_chart

TINY = ExperimentConfig(
    n_servers=12,
    n_objects=40,
    total_requests=5_000,
    rw_ratio=0.95,
    capacity_fraction=0.4,
    seed=60,
    name="repl-test",
)


class TestReplicateComparison:
    def test_structure(self):
        rc = replicate_comparison(
            TINY, n_replications=3, algorithms=("AGT-RAM", "Greedy")
        )
        assert rc.n_replications == 3
        assert set(rc.summaries) == {"AGT-RAM", "Greedy"}
        for s in rc.summaries.values():
            assert s.n_runs == 3

    def test_mean_views(self):
        rc = replicate_comparison(
            TINY, n_replications=2, algorithms=("AGT-RAM",)
        )
        assert rc.mean_savings()["AGT-RAM"] == pytest.approx(
            rc.summaries["AGT-RAM"].savings_mean
        )
        assert rc.mean_runtimes()["AGT-RAM"] >= 0.0

    def test_instances_actually_vary(self):
        # With fresh instance draws, stddev across replications is
        # nonzero (unlike repeated runs on one instance).
        rc = replicate_comparison(
            TINY, n_replications=4, algorithms=("Greedy",)
        )
        assert rc.summaries["Greedy"].savings_std > 0.0

    def test_deterministic(self):
        a = replicate_comparison(TINY, n_replications=2, algorithms=("AGT-RAM",))
        b = replicate_comparison(TINY, n_replications=2, algorithms=("AGT-RAM",))
        assert a.mean_savings() == b.mean_savings()

    def test_bad_replications(self):
        with pytest.raises(Exception):
            replicate_comparison(TINY, n_replications=0)


class TestAsciiChart:
    def test_renders_points_and_legend(self):
        out = ascii_chart({"A": [(0.0, 0.0), (1.0, 10.0)]})
        assert "o = A" in out
        assert "o" in out.splitlines()[0] or any(
            "o" in line for line in out.splitlines()
        )

    def test_multiple_series_glyphs(self):
        out = ascii_chart(
            {"A": [(0, 1), (1, 2)], "B": [(0, 2), (1, 1)]}
        )
        assert "o = A" in out and "x = B" in out

    def test_labels(self):
        out = ascii_chart(
            {"A": [(0, 0), (1, 1)]}, y_label="savings", x_label="capacity"
        )
        assert "savings" in out and "capacity" in out

    def test_constant_series(self):
        # Degenerate ranges must not divide by zero.
        out = ascii_chart({"A": [(0.5, 7.0), (0.5, 7.0)]})
        assert "o = A" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"A": []})

    def test_dimensions(self):
        out = ascii_chart({"A": [(0, 0), (1, 1)]}, width=30, height=8)
        body = [l for l in out.splitlines() if "|" in l or "+" in l]
        assert len(body) >= 8
