"""RNG decoupling and adversary-dormancy tests.

Satellite guarantees of the composed failure planes:

* every plane realizes from its own spawn-keyed substream, so adding
  or removing one plane never changes what another plane does;
* a plane that realizes to nothing is byte-identical to the plane
  never having been declared, at every entry point (flat simulator,
  sharded runtime, full scenario);
* regional quiescence re-arms once the adversary window ends or every
  scripted attacker is expelled — with measurable traffic savings.
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance
from repro.obs import events as ev
from repro.runtime.adversary import (
    AdversaryPlan,
    AdversarySpec,
    QuarantinePolicy,
)
from repro.runtime.faults import FaultPlan, FaultSchedule
from repro.runtime.scenario import (
    AdversaryPlane,
    FaultPlane,
    PartitionPlane,
    Scenario,
    materialize,
    run_scenario,
)
from repro.runtime.shard import ShardedAGTRam
from repro.runtime.simulator import SemiDistributedSimulator


@pytest.fixture(scope="module")
def comp_instance():
    return paper_instance(
        ExperimentConfig(
            n_servers=12, n_objects=40, total_requests=6000,
            seed=5, name="comp",
        )
    )


def stream(fn):
    """Run ``fn`` under capture on the logical clock; return the events."""
    with ev.logical_time(), ev.capture() as sink:
        fn()
    return [e.to_dict() for e in sink.events]


class TestPlaneSubstreamIndependence:
    BASE = Scenario(
        name="indep", seed=99, servers=10, objects=30, requests=3000,
        regions=2, horizon=16, n_requests=1000,
        faults=FaultPlane(crash_rate=0.05, straggler_rate=0.05,
                          serving_crash_rate=0.03),
        adversary=AdversaryPlane(fraction=0.3),
        partition=PartitionPlane(fraction=0.3, mean_width=4.0),
    )

    def test_fault_realization_ignores_other_planes(self):
        alone = materialize(
            dataclasses.replace(self.BASE, adversary=None, partition=None)
        )
        composed = materialize(self.BASE)
        assert alone.fault_plan is not None
        assert (
            alone.fault_plan.schedule.to_dict()
            == composed.fault_plan.schedule.to_dict()
        )
        assert alone.serving_faults.to_dict() == (
            composed.serving_faults.to_dict()
        )

    def test_adversary_realization_ignores_other_planes(self):
        alone = materialize(
            dataclasses.replace(self.BASE, faults=None, partition=None)
        )
        composed = materialize(self.BASE)
        assert alone.adversary is not None
        assert alone.adversary.to_dict() == composed.adversary.to_dict()

    def test_partition_realization_ignores_other_planes(self):
        alone = materialize(
            dataclasses.replace(self.BASE, faults=None, adversary=None)
        )
        composed = materialize(self.BASE)
        assert alone.partition is not None
        assert alone.partition.to_dict() == composed.partition.to_dict()

    def test_instance_and_seeds_ignore_every_plane(self):
        bare = materialize(
            dataclasses.replace(
                self.BASE, faults=None, adversary=None, partition=None
            )
        )
        composed = materialize(self.BASE)
        assert (bare.instance.cost == composed.instance.cost).all()
        assert (bare.instance.reads == composed.instance.reads).all()
        assert bare.shard_seed == composed.shard_seed
        assert bare.serve_seed == composed.serve_seed


class TestNullPlaneByteIdentity:
    def test_scenario_zero_rate_planes_equal_absent_planes(self):
        bare = Scenario(name="null", seed=21, servers=8, objects=24,
                        requests=2000, regions=2, n_requests=800)
        declared = dataclasses.replace(
            bare,
            faults=FaultPlane(),          # all rates zero
            adversary=AdversaryPlane(fraction=0.0),
            partition=PartitionPlane(fraction=0.0, crash_rate=0.0),
        )
        a = run_scenario(bare)
        b = run_scenario(declared)
        assert [e.to_dict() for e in a.events] == [
            e.to_dict() for e in b.events
        ]
        # Reports agree everywhere except the declared-scenario echo
        # (the report faithfully records what was *declared*; the run
        # itself cannot tell the difference).
        trimmed_a = {k: v for k, v in a.report.items() if k != "scenario"}
        trimmed_b = {k: v for k, v in b.report.items() if k != "scenario"}
        assert trimmed_a == trimmed_b

    def test_flat_null_fault_plan_equals_no_faults(self, comp_instance):
        null_plan = FaultPlan(
            schedule=FaultSchedule.null(), checkpoint_period=0, seed=77
        )
        without = stream(
            lambda: SemiDistributedSimulator().run(comp_instance)
        )
        with_null = stream(
            lambda: SemiDistributedSimulator(faults=null_plan).run(
                comp_instance
            )
        )
        assert without == with_null

    def test_flat_closed_window_adversary_equals_no_adversary(
        self, comp_instance
    ):
        plan = AdversaryPlan.random(
            n_agents=12, fraction=0.25, seed=3, window=(0, 0)
        )
        without = stream(
            lambda: SemiDistributedSimulator().run(comp_instance)
        )
        with_plan = stream(
            lambda: SemiDistributedSimulator(adversary=plan).run(
                comp_instance
            )
        )
        assert without == with_plan

    def test_sharded_closed_window_adversary_equals_no_adversary(
        self, comp_instance
    ):
        plan = AdversaryPlan.random(
            n_agents=12, fraction=0.25, seed=3, window=(0, 0)
        )
        without = stream(
            lambda: ShardedAGTRam(n_regions=3, seed=9).run(comp_instance)
        )
        with_plan = stream(
            lambda: ShardedAGTRam(
                n_regions=3, seed=9, adversary=plan
            ).run(comp_instance)
        )
        assert without == with_plan


class TestDormancy:
    def test_dormant_after_window(self):
        plan = AdversaryPlan(
            agents={1: AdversarySpec("inflate")}, window=(2, 5)
        )
        from repro.runtime.adversary import AdversaryInjector

        inj = AdversaryInjector(plan, n_agents=4)
        # Before and during the window the attack is still live.
        assert not inj.dormant(1)
        assert not inj.dormant(4)
        assert inj.dormant(5)  # half-open: end round is already out
        assert inj.dormant(99)

    def test_dormant_once_all_attackers_expelled(self):
        plan = AdversaryPlan(
            agents={1: AdversarySpec("inflate"), 3: AdversarySpec("garbage")}
        )
        from repro.runtime.adversary import AdversaryInjector

        inj = AdversaryInjector(plan, n_agents=6)
        assert not inj.dormant(10)
        assert not inj.dormant(10, expelled={1})
        assert inj.dormant(10, expelled={1, 3})
        assert inj.dormant(10, expelled={1, 3, 5})

    def test_unbounded_plan_never_dormant_without_expulsions(self):
        plan = AdversaryPlan(agents={2: AdversarySpec("inflate")})
        from repro.runtime.adversary import AdversaryInjector

        inj = AdversaryInjector(plan, n_agents=4)
        assert not inj.dormant(10**6)

    def test_window_end_restores_quiescence_savings(self, comp_instance):
        def messages(plan):
            kw = {} if plan is None else {"adversary": plan}
            r = ShardedAGTRam(n_regions=3, seed=9, **kw).run(comp_instance)
            return r.extra["messages"]

        baseline = messages(None)
        always = messages(
            AdversaryPlan.random(n_agents=12, fraction=0.25, seed=3)
        )
        windowed = messages(
            AdversaryPlan.random(
                n_agents=12, fraction=0.25, seed=3, window=(0, 3)
            )
        )
        # An armed adversary suppresses regional quiescence (every
        # region keeps bidding), costing messages; once the window
        # passes, quiescence re-arms and the tail is cheap again.
        assert baseline < windowed < always

    def test_expulsion_restores_quiescence_savings(self, comp_instance):
        plan = AdversaryPlan.random(n_agents=12, fraction=0.25, seed=3)

        def messages(policy):
            r = ShardedAGTRam(
                n_regions=3, seed=9, adversary=plan, quarantine=policy
            ).run(comp_instance)
            return r.extra["messages"]

        harsh = messages(
            QuarantinePolicy(strikes=1, probation=2, max_quarantines=1)
        )
        lax = messages(
            QuarantinePolicy(strikes=1, probation=2, max_quarantines=1000)
        )
        # Expelling every attacker makes the adversary permanently
        # dormant mid-run; quiescent regions then stop bidding.
        assert harsh < lax
