"""Tests for the Byzantine-agent layer: adversary plans, the bid
injector, the validator/detector/quarantine defence, and the
end-to-end bounded-damage guarantees of the hardened simulator."""

import json

import numpy as np
import pytest

from repro.core.agents import Bid
from repro.drp.benefit import BenefitEngine
from repro.drp.feasibility import check_state
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.obs.audit import audit_events
from repro.runtime.adversary import (
    BEHAVIORS,
    DETECTOR_REL_TOL,
    AdversaryInjector,
    AdversaryPlan,
    AdversarySpec,
    ManipulationDetector,
    MessageValidator,
    QuarantineManager,
    QuarantinePolicy,
    TrustBoundary,
)
from repro.runtime.faults import ChannelConfig, FaultPlan
from repro.runtime.messages import BidMessage
from repro.runtime.simulator import SemiDistributedSimulator


def bid_msg(sender, obj, value, seq=0):
    return BidMessage(sender=sender, receiver=-1, obj=obj, value=value, seq=seq)


class TestAdversarySpec:
    def test_valid(self):
        s = AdversarySpec("inflate", factor=3.0, activity=0.5)
        assert s.behavior == "inflate"

    def test_unknown_behavior(self):
        with pytest.raises(ConfigurationError, match="behavior"):
            AdversarySpec("bribe")

    def test_factor_must_exceed_one(self):
        with pytest.raises(ConfigurationError, match="factor"):
            AdversarySpec("inflate", factor=1.0)

    def test_activity_bounds(self):
        with pytest.raises(ConfigurationError, match="activity"):
            AdversarySpec("inflate", activity=0.0)

    def test_collude_needs_ring(self):
        with pytest.raises(ConfigurationError, match="ring"):
            AdversarySpec("collude")
        AdversarySpec("collude", ring=0)  # fine

    def test_dict_round_trip(self):
        s = AdversarySpec("collude", factor=4.0, activity=0.7, ring=2)
        assert AdversarySpec.from_dict(s.to_dict()) == s
        assert json.loads(json.dumps(s.to_dict())) == s.to_dict()


class TestAdversaryPlan:
    def test_null(self):
        assert AdversaryPlan.null().is_null
        assert not AdversaryPlan(agents={0: AdversarySpec("inflate")}).is_null

    def test_negative_agent_rejected(self):
        with pytest.raises(ConfigurationError, match="negative"):
            AdversaryPlan(agents={-1: AdversarySpec("inflate")})

    def test_random_is_deterministic(self):
        a = AdversaryPlan.random(n_agents=20, fraction=0.3, seed=9)
        b = AdversaryPlan.random(n_agents=20, fraction=0.3, seed=9)
        assert a == b
        assert len(a.agents) == round(0.3 * 20)

    def test_random_fraction_bounds(self):
        with pytest.raises(ConfigurationError, match="fraction"):
            AdversaryPlan.random(n_agents=10, fraction=1.5)

    def test_random_unknown_behavior(self):
        with pytest.raises(ConfigurationError, match="behavior"):
            AdversaryPlan.random(n_agents=10, fraction=0.5, behaviors=("woo",))

    def test_random_folds_singleton_ring(self):
        # With exactly one colluder sampled there is no ring to run;
        # the planner rewrites it to plain inflation.
        plan = AdversaryPlan.random(
            n_agents=10, fraction=0.1, behaviors=("collude",), seed=0
        )
        assert all(s.behavior != "collude" for s in plan.agents.values())

    def test_dict_round_trip(self):
        plan = AdversaryPlan.random(n_agents=16, fraction=0.4, seed=3)
        assert AdversaryPlan.from_dict(plan.to_dict()) == plan
        assert json.loads(json.dumps(plan.to_dict())) == plan.to_dict()

    def test_injector_rejects_out_of_range_agent(self):
        plan = AdversaryPlan(agents={9: AdversarySpec("inflate")})
        with pytest.raises(ConfigurationError, match="out of range"):
            AdversaryInjector(plan, n_agents=4)


class TestMessageValidator:
    def screen(self, instance, bids, state=None):
        state = state or ReplicationState.primaries_only(instance)
        v = MessageValidator(instance)
        return v.screen(bids, state, rnd=0)

    def test_honest_bids_pass(self, tiny_instance):
        state = ReplicationState.primaries_only(tiny_instance)
        obj = int(np.nonzero(~state.x[0].astype(bool))[0][0])
        accepted, events = self.screen(
            tiny_instance, [bid_msg(0, obj, 5.0)], state
        )
        assert len(accepted) == 1 and not events

    def test_unknown_sender(self, tiny_instance):
        accepted, events = self.screen(
            tiny_instance, [bid_msg(99, 0, 1.0)]
        )
        assert not accepted
        assert events[0].kind == "unknown_sender"

    def test_object_out_of_range(self, tiny_instance):
        _, events = self.screen(
            tiny_instance, [bid_msg(0, tiny_instance.n_objects + 7, 1.0)]
        )
        assert events[0].kind == "schema"

    def test_non_finite_value(self, tiny_instance):
        for value in (float("nan"), float("inf")):
            _, events = self.screen(tiny_instance, [bid_msg(0, 0, value)])
            assert events[0].kind == "schema"

    def test_bogus_sequence_number(self, tiny_instance):
        _, events = self.screen(tiny_instance, [bid_msg(0, 0, 1.0, seq=9999)])
        assert events[0].kind == "schema"

    def test_already_hosted_is_infeasible(self, tiny_instance):
        state = ReplicationState.primaries_only(tiny_instance)
        hosted = int(np.nonzero(state.x[3])[0][0])
        _, events = self.screen(
            tiny_instance, [bid_msg(3, hosted, 2.0)], state
        )
        assert events[0].kind == "feasibility"

    def test_equivocation_voids_every_copy(self, tiny_instance):
        state = ReplicationState.primaries_only(tiny_instance)
        free = np.nonzero(~state.x[0].astype(bool))[0][:2]
        bids = [
            bid_msg(0, int(free[0]), 1.0),
            bid_msg(0, int(free[1]), 2.0),
        ]
        accepted, events = self.screen(tiny_instance, bids, state)
        assert not accepted
        assert events[0].kind == "equivocation"

    def test_retransmission_passes(self, tiny_instance):
        state = ReplicationState.primaries_only(tiny_instance)
        obj = int(np.nonzero(~state.x[0].astype(bool))[0][0])
        bids = [bid_msg(0, obj, 1.0), bid_msg(0, obj, 1.0, seq=1)]
        accepted, events = self.screen(tiny_instance, bids, state)
        assert len(accepted) == 2 and not events


class TestManipulationDetector:
    def test_truthful_bid_never_flagged(self):
        matrix = np.array([[3.0, 1.0], [2.0, 5.0]])
        d = ManipulationDetector()
        assert not d.inspect([bid_msg(1, 1, 5.0)], matrix, rnd=0)

    def test_misreport_flagged_with_both_values(self):
        matrix = np.array([[3.0, 1.0]])
        d = ManipulationDetector()
        events = d.inspect([bid_msg(0, 0, 6.0)], matrix, rnd=4)
        assert len(events) == 1
        e = events[0]
        assert e.kind == "misreport"
        assert e.reported == 6.0 and e.recomputed == 3.0 and e.round == 4

    def test_sub_tolerance_noise_tolerated(self):
        matrix = np.array([[3.0]])
        d = ManipulationDetector()
        wiggle = 3.0 * (1.0 + DETECTOR_REL_TOL / 4)
        assert not d.inspect([bid_msg(0, 0, wiggle)], matrix, rnd=0)

    def test_rel_tol_validated(self):
        with pytest.raises(ConfigurationError):
            ManipulationDetector(rel_tol=0.0)


class TestQuarantine:
    def test_policy_validation(self):
        for kwargs in (
            {"strikes": 0}, {"probation": 0}, {"max_quarantines": 0},
        ):
            with pytest.raises(ConfigurationError):
                QuarantinePolicy(**kwargs)

    def test_strikes_then_quarantine_then_release(self):
        q = QuarantineManager(QuarantinePolicy(strikes=2, probation=3))
        q.strike(5, rnd=0)
        assert 5 not in q.quarantined
        q.strike(5, rnd=1)
        assert 5 in q.quarantined
        # A strike during quarantine is a no-op.
        q.strike(5, rnd=2)
        assert q.quarantined_until[5] == 1 + 1 + 3
        assert q.releases_due(4) == []
        assert q.releases_due(5) == [5]
        assert 5 not in q.quarantined
        assert q.strikes[5] == 0  # clean slate after probation

    def test_expulsion_after_max_quarantines(self):
        q = QuarantineManager(
            QuarantinePolicy(strikes=1, probation=1, max_quarantines=2)
        )
        q.strike(3, rnd=0)          # first quarantine
        q.releases_due(2)
        q.strike(3, rnd=2)          # second trip -> expelled
        assert 3 in q.expelled
        assert 3 not in q.quarantined

    def test_lifecycle_events_emitted(self):
        sink = ev.RecordingSink()
        with ev.capture(sink):
            q = QuarantineManager(QuarantinePolicy(strikes=1, probation=1))
            q.strike(2, rnd=0)
            q.releases_due(2)
        actions = [
            e.action for e in sink.events if isinstance(e, ev.QuarantineEvent)
        ]
        assert actions == ["quarantine", "release"]


def _log_bytes(sink):
    return "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in sink.events)


def _run_logged(instance, **kwargs):
    sink = ev.RecordingSink()
    with ev.logical_time(), ev.capture(sink):
        result = SemiDistributedSimulator(**kwargs).run(instance)
    return result, sink


class TestNullPlanIdentity:
    """A null adversary plan must reproduce the honest run exactly."""

    def test_scheme_otc_and_log_identical(self, tiny_instance):
        base, base_sink = _run_logged(tiny_instance)
        null, null_sink = _run_logged(
            tiny_instance, adversary=AdversaryPlan.null()
        )
        assert np.array_equal(base.state.x, null.state.x)
        assert base.otc == null.otc
        assert _log_bytes(base_sink) == _log_bytes(null_sink)


def _plan(m, *, fraction=0.4, seed=3):
    return AdversaryPlan.random(n_agents=m, fraction=fraction, seed=seed)


class TestAdversaryEndToEnd:
    def test_same_seed_byte_identical_event_log(self, tiny_instance):
        plan = _plan(tiny_instance.n_servers)
        _, s1 = _run_logged(tiny_instance, adversary=plan)
        _, s2 = _run_logged(tiny_instance, adversary=plan)
        assert _log_bytes(s1) == _log_bytes(s2)

    def test_detection_recall_and_no_false_quarantines(self, tiny_instance):
        plan = _plan(tiny_instance.n_servers)
        _, sink = _run_logged(tiny_instance, adversary=plan)
        truth, flagged, quarantined = set(), set(), set()
        for e in sink.events:
            if isinstance(e, ev.AdversaryEvent):
                truth.add((e.round, e.agent))
            elif isinstance(e, (ev.ValidationEvent, ev.ManipulationEvent)):
                if e.agent >= 0:
                    flagged.add((e.round, e.agent))
            elif isinstance(e, ev.QuarantineEvent):
                if e.action in ("quarantine", "expel"):
                    quarantined.add(e.agent)
        assert truth, "the campaign must actually inject something"
        recall = len(truth & flagged) / len(truth)
        assert recall >= 0.95
        assert quarantined <= set(plan.agents)  # zero false quarantines

    def test_final_scheme_stays_feasible(self, tiny_instance):
        result, _ = _run_logged(
            tiny_instance, adversary=_plan(tiny_instance.n_servers)
        )
        check_state(result.state)

    def test_log_passes_offline_audit(self, tiny_instance):
        _, sink = _run_logged(
            tiny_instance, adversary=_plan(tiny_instance.n_servers)
        )
        report = audit_events(sink.events)
        assert report.ok, [str(v) for v in report.violations]

    def test_trust_and_adversary_summaries(self, tiny_instance):
        result, _ = _run_logged(
            tiny_instance, adversary=_plan(tiny_instance.n_servers)
        )
        adv = result.extra["adversary_summary"]
        trust = result.extra["trust_summary"]
        assert adv["injected"]["injected_bids"] > 0
        assert trust["validations_rejected"] + trust["manipulations_flagged"] > 0
        assert json.loads(json.dumps(adv)) == adv
        # NaN-valued garbage bids may appear in the plan dict only, which
        # is JSON-safe; the trust summary must round-trip too.
        assert json.loads(json.dumps(trust)) == trust

    def test_composes_with_fault_plan(self, tiny_instance):
        plan = _plan(tiny_instance.n_servers)
        faults = FaultPlan(
            channel=ChannelConfig(drop=0.05, duplicate=0.02), seed=11
        )
        r1, s1 = _run_logged(tiny_instance, adversary=plan, faults=faults)
        r2, s2 = _run_logged(tiny_instance, adversary=plan, faults=faults)
        assert _log_bytes(s1) == _log_bytes(s2)
        check_state(r1.state)

    def test_expelled_agents_do_not_block_termination(self, tiny_instance):
        # A pure-garbage adversary gets expelled quickly; the run must
        # still converge rather than livelock waiting for it.
        m = tiny_instance.n_servers
        plan = AdversaryPlan(
            agents={0: AdversarySpec("garbage")}, seed=2
        )
        result, sink = _run_logged(
            tiny_instance,
            adversary=plan,
            quarantine=QuarantinePolicy(
                strikes=1, probation=2, max_quarantines=1
            ),
        )
        expels = [
            e for e in sink.events
            if isinstance(e, ev.QuarantineEvent) and e.action == "expel"
        ]
        assert [e.agent for e in expels] == [0]
        check_state(result.state)
        assert result.rounds > 0


class TestTrustBoundaryUnit:
    def test_screen_strikes_once_per_round(self, tiny_instance):
        state = ReplicationState.primaries_only(tiny_instance)
        engine = BenefitEngine(tiny_instance, state)
        boundary = TrustBoundary(
            tiny_instance, QuarantinePolicy(strikes=2, probation=5)
        )
        obj = int(np.nonzero(~state.x[0].astype(bool))[0][0])
        lie = float(engine.matrix[0, obj]) + 100.0
        # Two copies of the same lie in one round: one strike, not two.
        bids = [bid_msg(0, obj, lie), bid_msg(0, obj, lie, seq=1)]
        accepted, offended = boundary.screen(bids, state, engine.matrix, 0)
        assert offended and len(accepted) == 2
        assert boundary.quarantine.strikes[0] == 1

    def test_filter_bidders_drops_excluded(self, tiny_instance):
        boundary = TrustBoundary(tiny_instance)
        boundary.quarantine.expelled.add(2)
        assert boundary.filter_bidders([0, 1, 2, 3], rnd=0) == [0, 1, 3]


class TestCollusion:
    def test_boosters_prop_up_second_price(self):
        plan = AdversaryPlan(
            agents={
                1: AdversarySpec("collude", ring=0),
                2: AdversarySpec("collude", ring=0),
            }
        )
        inj = AdversaryInjector(plan, n_agents=4)

        class _State:
            x = np.zeros((4, 3), dtype=np.int8)
            residual = np.full(4, 100)

        class _Inst:
            sizes = np.array([1, 1, 1])
            n_objects = 3

        bids = {
            0: Bid(agent=0, obj=0, value=4.0),
            1: Bid(agent=1, obj=1, value=9.0),   # ring leader
            2: Bid(agent=2, obj=2, value=1.0),   # booster
            3: Bid(agent=3, obj=0, value=2.0),
        }
        sink = ev.RecordingSink()
        with ev.capture(sink):
            sends = inj.corrupt_round(0, bids, _State(), _Inst())
        # The leader's bid is untouched; the booster sits just under it.
        assert sends[1] == [(1, 9.0)]
        (obj, boost), = sends[2]
        assert obj == 2 and 8.9 < boost < 9.0
        ground_truth = [
            e for e in sink.events if isinstance(e, ev.AdversaryEvent)
        ]
        assert [e.agent for e in ground_truth] == [2]
        assert ground_truth[0].behavior == "collude"
