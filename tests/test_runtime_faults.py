"""Tests for the fault-injection subsystem (repro.runtime.faults).

Covers the unit pieces (schedule, channel, quorum, checkpoints), the
simulator integration invariants (null-plan equivalence, determinism,
feasibility under chaos, central-crash recovery, stall/convergence),
and the audit-modulo-fault-log contract.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.obs import events as ev
from repro.obs.audit import audit_events
from repro.runtime.faults import (
    ChannelConfig,
    Checkpoint,
    CheckpointStore,
    Delivery,
    FaultPlan,
    FaultSchedule,
    FaultyChannel,
    QuorumPolicy,
)
from repro.runtime.simulator import SemiDistributedSimulator


# -- channel ------------------------------------------------------------------


class TestChannel:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(drop=1.0)
        with pytest.raises(ConfigurationError):
            ChannelConfig(delay=-0.1)
        assert ChannelConfig().lossless
        assert not ChannelConfig(duplicate=0.1).lossless

    def test_lossless_channel_always_delivers(self):
        ch = FaultyChannel(ChannelConfig(), seed=3)
        assert all(ch.transmit() is Delivery.DELIVERED for _ in range(50))
        assert ch.stats["delivered"] == 50

    def test_same_seed_same_loss_pattern(self):
        cfg = ChannelConfig(drop=0.3, delay=0.2, duplicate=0.1)
        ch1, ch2 = FaultyChannel(cfg, seed=7), FaultyChannel(cfg, seed=7)
        assert [ch1.transmit() for _ in range(200)] == [
            ch2.transmit() for _ in range(200)
        ]
        assert ch1.stats == ch2.stats

    def test_stats_partition_transmissions(self):
        ch = FaultyChannel(ChannelConfig(drop=0.4, duplicate=0.3), seed=0)
        for _ in range(300):
            ch.transmit()
        assert sum(ch.stats.values()) == 300
        assert ch.stats["dropped"] > 0 and ch.stats["duplicated"] > 0


# -- schedule -----------------------------------------------------------------


class TestFaultSchedule:
    def test_null(self):
        s = FaultSchedule.null()
        assert s.is_null
        assert not s.agent_down(0, 0)
        assert not s.central_crashes_at(0)
        assert not s.is_straggler(0, 0)

    def test_scripted_intervals(self):
        s = FaultSchedule(
            agent_crashes={3: ((2, 5),)},
            central_crashes={4},
            stragglers={(1, 0)},
        )
        assert not s.is_null
        assert not s.agent_down(3, 1)
        assert s.agent_down(3, 2) and s.agent_down(3, 4)
        assert not s.agent_down(3, 5)  # half-open [start, end)
        assert s.central_crashes_at(4) and not s.central_crashes_at(3)
        assert s.is_straggler(1, 0) and not s.is_straggler(0, 1)

    def test_malformed_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(agent_crashes={0: ((5, 5),)})
        with pytest.raises(ConfigurationError):
            FaultSchedule(agent_crashes={0: ((-1, 2),)})

    def test_random_is_deterministic(self):
        kw = dict(
            n_agents=8, horizon=50, seed=11, crash_rate=0.1,
            straggler_rate=0.05, central_crash_rate=0.04,
        )
        assert FaultSchedule.random(**kw).to_dict() == FaultSchedule.random(
            **kw
        ).to_dict()
        other = FaultSchedule.random(**{**kw, "seed": 12})
        assert other.to_dict() != FaultSchedule.random(**kw).to_dict()

    def test_dict_round_trip(self):
        s = FaultSchedule.random(
            n_agents=6, horizon=30, seed=2, crash_rate=0.15,
            straggler_rate=0.1, central_crash_rate=0.05,
        )
        assert FaultSchedule.from_dict(s.to_dict()).to_dict() == s.to_dict()
        assert json.loads(json.dumps(s.to_dict())) == s.to_dict()

    def test_random_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.random(n_agents=0, horizon=10)
        with pytest.raises(ConfigurationError):
            FaultSchedule.random(n_agents=2, horizon=10, crash_rate=1.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule.random(n_agents=2, horizon=10, mean_outage=0.5)


# -- quorum / checkpoints -----------------------------------------------------


class TestQuorumPolicy:
    def test_required(self):
        q = QuorumPolicy(quorum=0.5)
        assert q.required(0) == 0
        assert q.required(1) == 1
        assert q.required(10) == 5
        assert q.required(11) == 6
        assert QuorumPolicy(quorum=1.0).required(7) == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuorumPolicy(quorum=0.0)
        with pytest.raises(ConfigurationError):
            QuorumPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            QuorumPolicy(max_stalled_rounds=0)


class TestCheckpointStore:
    def test_snapshots_every_period(self):
        store = CheckpointStore(period=2)
        assert not store.commit(0, 10, rnd=0)
        assert store.commit(1, 11, rnd=1)  # 2nd commit -> snapshot
        assert not store.commit(2, 12, rnd=2)
        assert store.taken == 1
        ckpt = store.restore()
        assert ckpt.round == 1
        assert ckpt.allocations == ((0, 10), (1, 11))
        assert store.lost_since_checkpoint == 1

    def test_empty_restore(self):
        store = CheckpointStore(period=4)
        assert store.restore() == Checkpoint()
        assert store.restore().round == -1

    def test_period_zero_disables(self):
        store = CheckpointStore(period=0)
        for i in range(10):
            assert not store.commit(i, i, rnd=i)
        assert store.taken == 0
        assert store.lost_since_checkpoint == 10

    def test_checkpoint_dict_round_trip(self):
        c = Checkpoint(round=3, allocations=((1, 2), (0, 5)))
        assert Checkpoint.from_dict(c.to_dict()) == c


# -- simulator integration ----------------------------------------------------


def _series_tuple(result):
    s = result.extra["round_series"]
    return (tuple(s.otc), tuple(s.messages), tuple(s.bytes), tuple(s.n_bids))


class TestNullPlanEquivalence:
    """A null fault plan must be byte-identical to no fault plan at all."""

    def test_scheme_rounds_messages_bytes(self, tiny_instance):
        base = SemiDistributedSimulator().run(tiny_instance)
        nul = SemiDistributedSimulator(faults=FaultPlan()).run(tiny_instance)
        assert np.array_equal(base.state.x, nul.state.x)
        assert base.otc == pytest.approx(nul.otc)
        assert base.rounds == nul.rounds
        assert nul.extra["protocol_rounds"] == nul.rounds + 1
        blog = base.extra["metrics"].log
        nlog = nul.extra["metrics"].log
        assert blog.counts == nlog.counts
        assert blog.bytes_total == nlog.bytes_total

    def test_round_series_identical(self, tiny_instance):
        with ev.capture():
            base = SemiDistributedSimulator().run(tiny_instance)
        with ev.capture():
            nul = SemiDistributedSimulator(faults=FaultPlan()).run(
                tiny_instance
            )
        assert _series_tuple(base) == _series_tuple(nul)

    def test_null_plan_injects_nothing(self, tiny_instance):
        nul = SemiDistributedSimulator(faults=FaultPlan()).run(tiny_instance)
        injected = nul.extra["fault_summary"]["injected"]
        assert injected["bids_lost"] == 0
        assert injected["drops"] == 0
        assert injected["stalled_rounds"] == 0
        assert injected["central_crashes"] == 0


def _chaos_plan(m, *, seed=5):
    return FaultPlan(
        schedule=FaultSchedule.random(
            n_agents=m, horizon=300, seed=seed, crash_rate=0.05,
            straggler_rate=0.04, central_crash_rate=0.03,
        ),
        channel=ChannelConfig(drop=0.15, delay=0.08, duplicate=0.06),
        seed=seed,
    )


class TestChaosRuns:
    def test_same_seed_byte_identical_event_log(self, tiny_instance):
        plan = _chaos_plan(tiny_instance.n_servers)

        def run():
            with ev.logical_time(), ev.capture() as sink:
                res = SemiDistributedSimulator(faults=plan).run(tiny_instance)
            return res, "\n".join(
                json.dumps(e.to_dict(), sort_keys=True) for e in sink.events
            )

        r1, log1 = run()
        r2, log2 = run()
        assert np.array_equal(r1.state.x, r2.state.x)
        assert log1 == log2

    def test_chaos_stays_feasible_with_primaries(self, tiny_instance):
        from repro.drp.feasibility import check_state

        res = SemiDistributedSimulator(
            faults=_chaos_plan(tiny_instance.n_servers)
        ).run(tiny_instance)
        check_state(res.state)  # capacity + primary copies + NN consistency
        # Primary copies explicitly retained.
        x = res.state.x
        for obj, server in enumerate(tiny_instance.primaries):
            assert x[server, obj] == 1

    def test_faults_cost_messages_not_quality_collapse(self, tiny_instance):
        from repro.drp.cost import total_otc
        from repro.drp.state import ReplicationState

        base = SemiDistributedSimulator().run(tiny_instance)
        res = SemiDistributedSimulator(
            faults=_chaos_plan(tiny_instance.n_servers)
        ).run(tiny_instance)
        # Chaos bills strictly more traffic than the clean run...
        assert (
            res.extra["metrics"].log.bytes_total
            > base.extra["metrics"].log.bytes_total
        )
        # ...but never does worse than allocating nothing at all.
        primaries_otc = total_otc(
            ReplicationState.primaries_only(tiny_instance)
        )
        assert res.otc <= primaries_otc

    def test_chaos_log_passes_audit(self, tiny_instance):
        with ev.logical_time(), ev.capture() as sink:
            SemiDistributedSimulator(
                faults=_chaos_plan(tiny_instance.n_servers)
            ).run(tiny_instance)
        report = audit_events(sink.events)
        assert report.ok, report.summary()
        assert report.faults_seen > 0

    def test_fault_summary_shape(self, tiny_instance):
        res = SemiDistributedSimulator(
            faults=_chaos_plan(tiny_instance.n_servers)
        ).run(tiny_instance)
        summary = res.extra["fault_summary"]
        assert json.loads(json.dumps(summary)) == summary  # JSON-safe
        assert summary["injected"]["bid_attempts"] > 0
        # Every non-straggler bid attempt went through the channel (NN
        # gossip transmissions come on top).
        assert (
            sum(summary["channel"].values())
            >= summary["injected"]["bid_attempts"]
            - summary["injected"]["stragglers"]
        )


class TestQuorumStalls:
    def test_universal_straggler_round_stalls(self, tiny_instance):
        m = tiny_instance.n_servers
        plan = FaultPlan(
            schedule=FaultSchedule(
                stragglers={(0, a) for a in range(m)}
            )
        )
        base = SemiDistributedSimulator().run(tiny_instance)
        res = SemiDistributedSimulator(faults=plan).run(tiny_instance)
        injected = res.extra["fault_summary"]["injected"]
        assert injected["stalled_rounds"] >= 1
        assert injected["timeouts"] >= 1
        assert res.extra["protocol_rounds"] > res.rounds + 1
        # A stalled round delays the game but changes nothing.
        assert np.array_equal(base.state.x, res.state.x)

    def test_timeout_event_lists_missing_bidders(self, tiny_instance):
        m = tiny_instance.n_servers
        plan = FaultPlan(
            schedule=FaultSchedule(stragglers={(0, 0), (0, 1)})
        )
        with ev.capture() as sink:
            SemiDistributedSimulator(faults=plan).run(tiny_instance)
        timeouts = [e for e in sink.events if isinstance(e, ev.TimeoutEvent)]
        assert len(timeouts) == 1
        assert timeouts[0].agents == (0, 1)
        assert timeouts[0].expected == m
        assert timeouts[0].received == m - 2
        assert timeouts[0].quorum_met

    def test_perpetual_blackout_raises_convergence_error(self, tiny_instance):
        m = tiny_instance.n_servers
        plan = FaultPlan(
            schedule=FaultSchedule(
                stragglers={(r, a) for r in range(50) for a in range(m)}
            ),
            quorum=QuorumPolicy(max_stalled_rounds=3),
        )
        with pytest.raises(ConvergenceError, match="stalled"):
            SemiDistributedSimulator(faults=plan).run(tiny_instance)

    def test_full_crash_round_is_a_stall_not_termination(self, tiny_instance):
        m = tiny_instance.n_servers
        plan = FaultPlan(
            schedule=FaultSchedule(
                agent_crashes={a: ((0, 2),) for a in range(m)}
            )
        )
        base = SemiDistributedSimulator().run(tiny_instance)
        res = SemiDistributedSimulator(faults=plan).run(tiny_instance)
        assert np.array_equal(base.state.x, res.state.x)
        assert res.extra["fault_summary"]["injected"]["stalled_rounds"] >= 2


class TestCentralCrashRecovery:
    def test_recovery_is_lossless_to_the_scheme(self, tiny_instance):
        base = SemiDistributedSimulator().run(tiny_instance)
        plan = FaultPlan(
            schedule=FaultSchedule(central_crashes={3}), checkpoint_period=2
        )
        res = SemiDistributedSimulator(faults=plan).run(tiny_instance)
        assert np.array_equal(base.state.x, res.state.x)
        assert res.otc == pytest.approx(base.otc)
        injected = res.extra["fault_summary"]["injected"]
        assert injected["central_crashes"] == 1
        assert injected["recoveries"] == 1
        # Election + state sync are billed as messages.
        counts = res.extra["metrics"].log.counts
        assert counts["ElectionMessage"] > 0
        assert counts["StateSyncMessage"] > 0
        assert res.extra["acting_central"] == 0  # lowest live id takes over

    def test_recovery_events_emitted(self, tiny_instance):
        plan = FaultPlan(
            schedule=FaultSchedule(central_crashes={3}), checkpoint_period=2
        )
        with ev.capture() as sink:
            SemiDistributedSimulator(faults=plan).run(tiny_instance)
        kinds = [type(e).__name__ for e in sink.events]
        assert "ElectionEvent" in kinds
        assert "CheckpointEvent" in kinds
        crash = [
            e
            for e in sink.events
            if isinstance(e, ev.FaultEvent) and e.kind == "central_crash"
        ]
        assert len(crash) == 1 and crash[0].round == 3
        rec = [
            e
            for e in sink.events
            if isinstance(e, ev.RecoveryEvent) and e.kind == "central"
        ]
        assert len(rec) == 1
        assert rec[0].acting_central == 0
        assert rec[0].checkpoint_round >= 0  # a checkpoint existed
        assert rec[0].replayed >= 0

    def test_recovery_without_checkpoints_replays_everything(
        self, tiny_instance
    ):
        base = SemiDistributedSimulator().run(tiny_instance)
        plan = FaultPlan(
            schedule=FaultSchedule(central_crashes={5}), checkpoint_period=0
        )
        with ev.capture() as sink:
            res = SemiDistributedSimulator(faults=plan).run(tiny_instance)
        assert np.array_equal(base.state.x, res.state.x)
        rec = [e for e in sink.events if isinstance(e, ev.RecoveryEvent)]
        assert rec[0].checkpoint_round == -1  # nothing to restore
        assert rec[0].replayed == 5  # all five commits re-learned


class TestAgentCrashIntervals:
    def test_crash_and_recovery_events(self, tiny_instance):
        plan = FaultPlan(
            schedule=FaultSchedule(agent_crashes={2: ((1, 4),)})
        )
        with ev.capture() as sink:
            res = SemiDistributedSimulator(faults=plan).run(tiny_instance)
        injected = res.extra["fault_summary"]["injected"]
        assert injected["agent_crashes"] == 1
        assert injected["agent_recoveries"] == 1
        crashes = [
            e
            for e in sink.events
            if isinstance(e, ev.FaultEvent) and e.kind == "agent_crash"
        ]
        recoveries = [
            e
            for e in sink.events
            if isinstance(e, ev.RecoveryEvent) and e.kind == "agent"
        ]
        assert [e.agent for e in crashes] == [2]
        assert [e.agent for e in recoveries] == [2]
        assert crashes[0].round == 1 and recoveries[0].round == 4

    def test_down_agent_still_feasible(self, tiny_instance):
        from repro.drp.feasibility import check_state

        plan = FaultPlan(
            schedule=FaultSchedule(
                agent_crashes={0: ((0, 10),), 1: ((3, 6),)}
            )
        )
        res = SemiDistributedSimulator(faults=plan).run(tiny_instance)
        check_state(res.state)


# -- audit modulo the fault log ----------------------------------------------


def _degraded_round() -> list[ev.Event]:
    """A quorum-degraded round: agent 1's (higher) bid was lost, so
    agent 0 legitimately wins at the second price among survivors."""
    return [
        ev.RunStart(t=0.0, algorithm="AGT-RAM(simulated)"),
        ev.RoundStart(t=1.0, round=0),
        ev.BidEvent(t=2.0, round=0, agent=0, obj=3, value=5.0),
        ev.BidEvent(t=3.0, round=0, agent=1, obj=4, value=9.0),
        ev.BidEvent(t=4.0, round=0, agent=2, obj=5, value=2.0),
        ev.TimeoutEvent(
            t=5.0, round=0, agents=(1,), expected=3, received=2,
            quorum_met=True,
        ),
        ev.WinnerEvent(
            t=6.0, round=0, agent=0, obj=3, value=5.0, obj_size=2,
            residual_before=10,
        ),
        ev.PaymentEvent(t=7.0, round=0, agent=0, amount=2.0),
        ev.RoundEnd(t=8.0, round=0, committed=1, otc=100.0),
        ev.RunEnd(t=9.0, algorithm="AGT-RAM(simulated)", otc=100.0, rounds=1),
    ]


class TestAuditModuloFaults:
    def test_degraded_round_passes_with_timeout_declared(self):
        report = audit_events(_degraded_round())
        assert report.ok, report.summary()
        assert report.timeouts_seen == 1
        assert "modulo" in report.summary()

    def test_same_round_fails_without_the_timeout(self):
        events = [
            e for e in _degraded_round() if not isinstance(e, ev.TimeoutEvent)
        ]
        report = audit_events(events)
        assert not report.ok
        kinds = {v.kind for v in report.violations}
        assert "winner" in kinds  # 5.0 lost to the undeclared 9.0
        assert "payment" in kinds  # second price should have been 9.0

    def test_winner_declared_lost_is_flagged(self):
        events = _degraded_round()
        # Tamper: claim the winner's own bid was lost.
        events[5] = ev.TimeoutEvent(
            t=5.0, round=0, agents=(0,), expected=3, received=2,
            quorum_met=True,
        )
        report = audit_events(events)
        assert not report.ok
        assert any("lost" in str(v) for v in report.violations)

    def test_timeout_naming_non_bidder_is_flagged(self):
        events = _degraded_round()
        events[5] = ev.TimeoutEvent(
            t=5.0, round=0, agents=(7,), expected=3, received=2,
            quorum_met=True,
        )
        report = audit_events(events)
        assert not report.ok
        assert any(v.kind == "structure" for v in report.violations)

    def test_fault_events_are_tallied(self):
        events = _degraded_round()
        events.insert(
            2, ev.FaultEvent(t=1.5, round=0, kind="drop", agent=1, target="bid")
        )
        report = audit_events(events)
        assert report.ok
        assert report.faults_seen == 1
