"""Tests for the online safety-invariant monitors."""

import pytest

from repro.errors import ConfigurationError, InvariantViolationError
from repro.obs import events as ev
from repro.runtime.invariants import InvariantConfig, InvariantMonitor
from repro.runtime.simulator import SemiDistributedSimulator


def winner(round=0, agent=0, obj=0, value=10.0, size=2, residual=5, region=-1):
    return ev.WinnerEvent(
        t=0.0, round=round, agent=agent, obj=obj, value=value,
        obj_size=size, residual_before=residual, region=region,
    )


def payment(round=0, agent=0, amount=5.0, region=-1):
    return ev.PaymentEvent(
        t=0.0, round=round, agent=agent, amount=amount, region=region,
    )


class TestConfig:
    def test_defaults(self):
        cfg = InvariantConfig()
        assert cfg.availability_floor == 0.0
        assert not cfg.strict

    def test_floor_bounds(self):
        with pytest.raises(ConfigurationError):
            InvariantConfig(availability_floor=1.5)
        with pytest.raises(ConfigurationError):
            InvariantConfig(availability_floor=-0.1)

    def test_window_bounds(self):
        with pytest.raises(ConfigurationError):
            InvariantConfig(availability_window=0)


class TestMechanismInvariants:
    def test_clean_sequence_passes(self):
        mon = InvariantMonitor()
        mon.emit(ev.RunStart(t=0.0, algorithm="x"))
        mon.emit(winner(round=0, agent=1, obj=0, size=2, residual=5))
        mon.emit(payment(round=0, agent=1, amount=4.0))
        mon.emit(winner(round=1, agent=1, obj=1, size=2, residual=3))
        mon.emit(payment(round=1, agent=1, amount=4.0))
        assert mon.ok
        assert mon.summary_dict()["violations"] == 0

    def test_capacity_exceeded(self):
        mon = InvariantMonitor()
        mon.emit(winner(size=9, residual=5))
        assert not mon.ok
        assert mon.violations[0].invariant == "capacity"

    def test_residual_chain_mismatch(self):
        mon = InvariantMonitor()
        mon.emit(winner(round=0, agent=2, obj=0, size=2, residual=5))
        # Chain implies residual 3; the agent claims 5 again.
        mon.emit(winner(round=1, agent=2, obj=1, size=1, residual=5))
        assert [v.invariant for v in mon.violations] == ["capacity"]

    def test_double_allocation(self):
        mon = InvariantMonitor()
        mon.emit(winner(round=0, agent=1, obj=3, size=1, residual=5))
        mon.emit(winner(round=1, agent=1, obj=3, size=1, residual=4))
        assert [v.invariant for v in mon.violations] == ["double_allocation"]

    def test_revocation_frees_the_pair(self):
        mon = InvariantMonitor()
        mon.emit(winner(round=0, agent=1, obj=3, size=1, residual=5))
        mon.emit(
            ev.ReconcileEvent(t=0.0, round=1, revoked=((1, 3),))
        )
        mon.emit(winner(round=2, agent=1, obj=3, size=1, residual=5))
        assert mon.ok

    def test_payment_exceeds_bid(self):
        mon = InvariantMonitor()
        mon.emit(winner(round=0, agent=1, value=10.0))
        mon.emit(payment(round=0, agent=1, amount=10.5))
        assert [v.invariant for v in mon.violations] == ["payment_bound"]

    def test_second_price_at_most_bid_passes(self):
        mon = InvariantMonitor()
        mon.emit(winner(round=0, agent=1, value=10.0))
        mon.emit(payment(round=0, agent=1, amount=10.0))
        assert mon.ok

    def test_undeclared_revocation(self):
        mon = InvariantMonitor()
        mon.emit(
            ev.ReconcileEvent(t=0.0, round=1, revoked=((4, 9),))
        )
        assert [v.invariant for v in mon.violations] == [
            "undeclared_revocation"
        ]

    def test_run_start_resets_the_model(self):
        mon = InvariantMonitor()
        mon.emit(winner(round=0, agent=1, obj=3, size=1, residual=5))
        mon.emit(ev.RunStart(t=0.0, algorithm="nested"))
        # Same pair again is fine in a fresh run.
        mon.emit(winner(round=0, agent=1, obj=3, size=1, residual=5))
        assert mon.ok

    def test_regions_tracked_independently(self):
        mon = InvariantMonitor()
        mon.emit(winner(round=0, agent=1, value=10.0, region=0))
        mon.emit(winner(round=0, agent=2, obj=1, value=8.0, region=1))
        mon.emit(payment(round=0, agent=1, amount=9.0, region=0))
        mon.emit(payment(round=0, agent=2, amount=7.0, region=1))
        assert mon.ok


class TestAvailabilityFloor:
    def test_floor_breach_flagged_once_per_episode(self):
        mon = InvariantMonitor(
            config=InvariantConfig(
                availability_floor=0.8, availability_window=10
            )
        )
        for i in range(10):
            outcome = "ok" if i < 5 else "failed"
            mon.emit(
                ev.RequestEvent(t=0.0, tick=i, outcome=outcome)
            )
        assert [v.invariant for v in mon.violations] == [
            "availability_floor"
        ]
        # Staying below the floor does not re-flag.
        mon.emit(ev.RequestEvent(t=0.0, tick=10, outcome="failed"))
        assert len(mon.violations) == 1

    def test_cold_start_not_an_outage(self):
        mon = InvariantMonitor(
            config=InvariantConfig(
                availability_floor=0.9, availability_window=100
            )
        )
        for i in range(50):
            mon.emit(ev.RequestEvent(t=0.0, tick=i, outcome="failed"))
        assert mon.ok  # window not yet full

    def test_disabled_by_default(self):
        mon = InvariantMonitor()
        for i in range(500):
            mon.emit(ev.RequestEvent(t=0.0, tick=i, outcome="failed"))
        assert mon.ok


class TestSinkBehavior:
    def test_violation_lands_in_inner_sink(self):
        inner = ev.ColumnarSink()
        mon = InvariantMonitor(inner)
        mon.emit(winner(size=9, residual=5))
        kinds = [e.type for e in inner.events]
        assert kinds == ["winner", "invariant"]

    def test_strict_raises_after_emitting(self):
        inner = ev.ColumnarSink()
        mon = InvariantMonitor(inner, config=InvariantConfig(strict=True))
        with pytest.raises(InvariantViolationError):
            mon.emit(winner(size=9, residual=5))
        assert any(e.type == "invariant" for e in inner.events)

    def test_emit_block_checks_expanded_stream(self):
        # One committed round whose winner takes size 9 on residual 5.
        import numpy as np

        block = ev.RoundBlock(
            base_round=0, rounds=1, n_agents=2,
            payment_rule="second_price", t0=0.0, t_step=1.0,
            bid_vals=np.array([[10.0, 4.0]]), bid_objs=np.array([[0, 0]]),
            winners=np.array([0]), objs=np.array([0]),
            residuals=np.array([5]), payments=np.array([4.0]),
            otcs=np.array([100.0]), obj_sizes=np.array([9]),
            n_bids=np.array([2]),
        )
        inner = ev.ColumnarSink()
        mon = InvariantMonitor(inner)
        mon.emit_block(block)
        assert not mon.ok
        assert mon.violations[0].invariant == "capacity"
        # The raw block is preserved for the inner sink; the violation
        # record lands after it.
        assert len(inner) == block.n_events + 1

    def test_proxies_inner_sink(self):
        mon = InvariantMonitor()
        mon.emit(winner())
        assert len(mon) == 1
        assert mon.nbytes >= 0
        assert [e.type for e in mon.events] == ["winner"]
        assert [e.type for e in mon.iter_events()] == ["winner"]

    def test_capture_integration_clean_run(self, tiny_instance):
        mon = InvariantMonitor()
        with ev.logical_time(), ev.capture(mon):
            SemiDistributedSimulator().run(tiny_instance)
        assert mon.ok
        assert len(mon) > 0
