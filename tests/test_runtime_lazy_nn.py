"""Tests for the lazy NN-update protocol (DESIGN.md §5 ablation)."""

import numpy as np
import pytest

from repro.drp.feasibility import check_state
from repro.runtime.simulator import SemiDistributedSimulator


class TestLazyNNUpdates:
    def test_period_one_is_eager(self, tiny_instance):
        eager = SemiDistributedSimulator(nn_update_period=1).run(tiny_instance)
        default = SemiDistributedSimulator().run(tiny_instance)
        assert np.array_equal(eager.state.x, default.state.x)

    def test_state_remains_feasible(self, read_heavy_instance):
        res = SemiDistributedSimulator(nn_update_period=5).run(read_heavy_instance)
        check_state(res.state)

    def test_fewer_nn_messages(self, read_heavy_instance):
        eager = SemiDistributedSimulator(nn_update_period=1).run(read_heavy_instance)
        lazy = SemiDistributedSimulator(nn_update_period=8).run(read_heavy_instance)
        assert (
            lazy.extra["metrics"].log.counts.get("NNUpdateMessage", 0)
            < eager.extra["metrics"].log.counts["NNUpdateMessage"]
        )

    def test_quality_degrades_or_matches(self, read_heavy_instance):
        eager = SemiDistributedSimulator(nn_update_period=1).run(read_heavy_instance)
        lazy = SemiDistributedSimulator(nn_update_period=10).run(read_heavy_instance)
        # Stale bids can only lose quality (they overestimate benefits).
        assert lazy.savings_percent <= eager.savings_percent + 0.5

    def test_still_saves_substantially(self, read_heavy_instance):
        lazy = SemiDistributedSimulator(nn_update_period=10).run(read_heavy_instance)
        assert lazy.savings_percent > 0.0

    def test_bad_period(self):
        with pytest.raises(ValueError):
            SemiDistributedSimulator(nn_update_period=0)

    def test_terminates(self, tiny_instance):
        res = SemiDistributedSimulator(nn_update_period=50).run(tiny_instance)
        assert res.rounds <= tiny_instance.n_servers * tiny_instance.n_objects
