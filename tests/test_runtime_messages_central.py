"""Tests for the message protocol and the central decision body."""

import numpy as np
import pytest

from repro.runtime.central import CentralBody, Decision
from repro.runtime.messages import (
    AllocateMessage,
    BidMessage,
    MessageLog,
    NNResyncMessage,
    NNUpdateMessage,
    PaymentMessage,
    StateSyncMessage,
)


class TestWireBytes:
    def test_bid_size(self):
        # tag+sender+receiver (9) + obj (4) + value (8) + seq (4)
        assert BidMessage(sender=0, receiver=-1, obj=1, value=2.0).wire_bytes() == 25

    def test_bid_seq_defaults_to_zero(self):
        assert BidMessage(sender=0, receiver=-1, obj=1, value=2.0).seq == 0
        retry = BidMessage(sender=0, receiver=-1, obj=1, value=2.0, seq=2)
        assert retry.seq == 2 and retry.wire_bytes() == 25

    def test_allocate_size(self):
        assert AllocateMessage(sender=-1, receiver=0).wire_bytes() == 17

    def test_payment_size(self):
        assert PaymentMessage(sender=-1, receiver=0, amount=1.0).wire_bytes() == 17

    def test_nn_update_size(self):
        assert NNUpdateMessage(sender=0, receiver=0, obj=2).wire_bytes() == 13

    def test_nn_resync_scales_with_payload(self):
        empty = NNResyncMessage(sender=0, receiver=0, objs=())
        three = NNResyncMessage(sender=0, receiver=0, objs=(1, 2, 3))
        assert empty.wire_bytes() == 13  # header + count
        assert three.wire_bytes() == 13 + 3 * 4  # + 4 bytes per object id

    def test_state_sync_scales_with_holdings(self):
        msg = StateSyncMessage(sender=2, receiver=0, objs=(4, 9))
        assert msg.wire_bytes() == 13 + 2 * 4
        assert msg.objs == (4, 9)


class TestMessageLog:
    def test_counts_and_bytes(self):
        log = MessageLog()
        log.record(BidMessage(sender=0, receiver=-1, obj=1, value=2.0))
        log.record(BidMessage(sender=1, receiver=-1, obj=2, value=3.0))
        log.record(PaymentMessage(sender=-1, receiver=0, amount=2.0))
        assert log.counts["BidMessage"] == 2
        assert log.total_messages() == 3
        assert log.bytes_total == 25 + 25 + 17

    def test_keep_messages_flag(self):
        log = MessageLog(keep_messages=True)
        msg = BidMessage(sender=0, receiver=-1, obj=0, value=1.0)
        log.record(msg)
        assert log.messages == [msg]

    def test_default_discards_stream(self):
        log = MessageLog()
        log.record(BidMessage(sender=0, receiver=-1, obj=0, value=1.0))
        assert log.messages == []


class TestCentralBody:
    def bids(self, values):
        return [
            BidMessage(sender=i, receiver=-1, obj=i, value=v)
            for i, v in enumerate(values)
        ]

    def test_picks_max(self):
        out = CentralBody().decide(self.bids([1.0, 9.0, 4.0]), 3)
        assert out.decision is Decision.REPLICATE
        assert out.winner == 1 and out.obj == 1

    def test_second_price(self):
        out = CentralBody().decide(self.bids([1.0, 9.0, 4.0]), 3)
        assert out.payment == 4.0

    def test_first_price_rule(self):
        out = CentralBody("first_price").decide(self.bids([1.0, 9.0]), 2)
        assert out.payment == 9.0

    def test_rejects_nonpositive_best(self):
        out = CentralBody().decide(self.bids([-1.0, 0.0]), 2)
        assert out.decision is Decision.DO_NOT_REPLICATE

    def test_no_bids(self):
        out = CentralBody().decide([], 3)
        assert out.decision is Decision.DO_NOT_REPLICATE

    def test_conflicting_duplicate_bid_rejected(self):
        # Equivocation no longer crashes the round: every copy from the
        # conflicting sender is voided and the round proceeds over the
        # surviving bidders.
        bids = [
            BidMessage(sender=0, receiver=-1, obj=0, value=1.0),
            BidMessage(sender=0, receiver=-1, obj=1, value=2.0),
            BidMessage(sender=1, receiver=-1, obj=2, value=1.5),
        ]
        out = CentralBody().decide(bids, 2)
        assert out.decision is Decision.REPLICATE
        assert out.winner == 1 and out.obj == 2
        assert 0 in out.rejected

    def test_conflicting_bid_emits_validation_event(self):
        from repro.obs import events as ev

        sink = ev.RecordingSink()
        bids = [
            BidMessage(sender=0, receiver=-1, obj=0, value=1.0),
            BidMessage(sender=0, receiver=-1, obj=1, value=2.0),
        ]
        with ev.capture(sink):
            out = CentralBody().decide(bids, 2, rnd=7)
        assert out.decision is Decision.DO_NOT_REPLICATE
        kinds = [e.kind for e in sink.events if isinstance(e, ev.ValidationEvent)]
        assert "equivocation" in kinds
        equivocations = [
            e for e in sink.events
            if isinstance(e, ev.ValidationEvent) and e.kind == "equivocation"
        ]
        assert equivocations[0].agent == 0
        assert equivocations[0].round == 7

    def test_retransmitted_duplicate_tolerated(self):
        # A lossy link may deliver the same bid more than once (possibly
        # under different sequence numbers); the central discards copies
        # idempotently instead of aborting the round.
        bids = [
            BidMessage(sender=0, receiver=-1, obj=0, value=5.0),
            BidMessage(sender=1, receiver=-1, obj=1, value=3.0),
            BidMessage(sender=0, receiver=-1, obj=0, value=5.0, seq=1),
            BidMessage(sender=0, receiver=-1, obj=0, value=5.0, seq=1),
        ]
        out = CentralBody().decide(bids, 2)
        assert out.decision is Decision.REPLICATE
        assert out.winner == 0 and out.obj == 0
        assert out.payment == 3.0  # second price unaffected by copies

    def test_tie_breaks_to_lowest_agent_id(self):
        # Documented determinism: equal top bids go to the lowest id.
        bids = [
            BidMessage(sender=0, receiver=-1, obj=3, value=7.0),
            BidMessage(sender=1, receiver=-1, obj=5, value=7.0),
            BidMessage(sender=2, receiver=-1, obj=6, value=7.0),
        ]
        out = CentralBody().decide(bids, 3)
        assert out.winner == 0 and out.obj == 3
        assert out.payment == 7.0
        # Order of arrival must not matter.
        out2 = CentralBody().decide(list(reversed(bids)), 3)
        assert out2.winner == 0 and out2.obj == 3

    def test_unknown_agent_rejected(self):
        # A sender outside [0, n_agents) is dropped and recorded, not a
        # crash: Byzantine peers must not be able to abort the round.
        out = CentralBody().decide(
            [BidMessage(sender=7, receiver=-1, obj=0, value=1.0)], 3
        )
        assert out.decision is Decision.DO_NOT_REPLICATE
        assert 7 in out.rejected

    def test_bad_payment_rule(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CentralBody("vcg-deluxe")

    def test_binary_decision_vocabulary(self):
        assert int(Decision.DO_NOT_REPLICATE) == 0
        assert int(Decision.REPLICATE) == 1
