"""Tests for the message protocol and the central decision body."""

import numpy as np
import pytest

from repro.errors import MechanismProtocolError
from repro.runtime.central import CentralBody, Decision
from repro.runtime.messages import (
    AllocateMessage,
    BidMessage,
    MessageLog,
    NNUpdateMessage,
    PaymentMessage,
)


class TestWireBytes:
    def test_bid_size(self):
        assert BidMessage(sender=0, receiver=-1, obj=1, value=2.0).wire_bytes() == 21

    def test_allocate_size(self):
        assert AllocateMessage(sender=-1, receiver=0).wire_bytes() == 17

    def test_payment_size(self):
        assert PaymentMessage(sender=-1, receiver=0, amount=1.0).wire_bytes() == 17

    def test_nn_update_size(self):
        assert NNUpdateMessage(sender=0, receiver=0, obj=2).wire_bytes() == 13


class TestMessageLog:
    def test_counts_and_bytes(self):
        log = MessageLog()
        log.record(BidMessage(sender=0, receiver=-1, obj=1, value=2.0))
        log.record(BidMessage(sender=1, receiver=-1, obj=2, value=3.0))
        log.record(PaymentMessage(sender=-1, receiver=0, amount=2.0))
        assert log.counts["BidMessage"] == 2
        assert log.total_messages() == 3
        assert log.bytes_total == 21 + 21 + 17

    def test_keep_messages_flag(self):
        log = MessageLog(keep_messages=True)
        msg = BidMessage(sender=0, receiver=-1, obj=0, value=1.0)
        log.record(msg)
        assert log.messages == [msg]

    def test_default_discards_stream(self):
        log = MessageLog()
        log.record(BidMessage(sender=0, receiver=-1, obj=0, value=1.0))
        assert log.messages == []


class TestCentralBody:
    def bids(self, values):
        return [
            BidMessage(sender=i, receiver=-1, obj=i, value=v)
            for i, v in enumerate(values)
        ]

    def test_picks_max(self):
        out = CentralBody().decide(self.bids([1.0, 9.0, 4.0]), 3)
        assert out.decision is Decision.REPLICATE
        assert out.winner == 1 and out.obj == 1

    def test_second_price(self):
        out = CentralBody().decide(self.bids([1.0, 9.0, 4.0]), 3)
        assert out.payment == 4.0

    def test_first_price_rule(self):
        out = CentralBody("first_price").decide(self.bids([1.0, 9.0]), 2)
        assert out.payment == 9.0

    def test_rejects_nonpositive_best(self):
        out = CentralBody().decide(self.bids([-1.0, 0.0]), 2)
        assert out.decision is Decision.DO_NOT_REPLICATE

    def test_no_bids(self):
        out = CentralBody().decide([], 3)
        assert out.decision is Decision.DO_NOT_REPLICATE

    def test_duplicate_bid_rejected(self):
        bids = [
            BidMessage(sender=0, receiver=-1, obj=0, value=1.0),
            BidMessage(sender=0, receiver=-1, obj=1, value=2.0),
        ]
        with pytest.raises(MechanismProtocolError, match="two bids"):
            CentralBody().decide(bids, 2)

    def test_unknown_agent_rejected(self):
        with pytest.raises(MechanismProtocolError, match="unknown"):
            CentralBody().decide(
                [BidMessage(sender=7, receiver=-1, obj=0, value=1.0)], 3
            )

    def test_bad_payment_rule(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CentralBody("vcg-deluxe")

    def test_binary_decision_vocabulary(self):
        assert int(Decision.DO_NOT_REPLICATE) == 0
        assert int(Decision.REPLICATE) == 1
