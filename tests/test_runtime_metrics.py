"""Edge-case tests for RuntimeMetrics.record_round_work and its derived
properties — previously untested in isolation."""

from __future__ import annotations

import pytest

from repro.runtime.metrics import RuntimeMetrics


class TestRecordRoundWork:
    def test_normal_round(self):
        metrics = RuntimeMetrics()
        metrics.record_round_work([3, 7, 5])
        assert metrics.parallel_round_work == [7]
        assert metrics.serial_round_work == [15]

    def test_empty_round_records_zero(self):
        # A round where no agent evaluated anything still occupies a slot
        # in the per-round series (keeps rounds aligned across lists).
        metrics = RuntimeMetrics()
        metrics.record_round_work([])
        assert metrics.parallel_round_work == [0]
        assert metrics.serial_round_work == [0]

    def test_single_agent_round(self):
        metrics = RuntimeMetrics()
        metrics.record_round_work([4])
        assert metrics.parallel_round_work == [4]
        assert metrics.serial_round_work == [4]

    def test_zero_work_agents(self):
        metrics = RuntimeMetrics()
        metrics.record_round_work([0, 0, 0])
        assert metrics.parallel_round_work == [0]
        assert metrics.serial_round_work == [0]

    def test_accumulates_across_rounds(self):
        metrics = RuntimeMetrics()
        metrics.record_round_work([2, 4])
        metrics.record_round_work([6])
        metrics.record_round_work([])
        assert metrics.parallel_round_work == [4, 6, 0]
        assert metrics.serial_round_work == [6, 6, 0]
        assert metrics.critical_path_work == 10
        assert metrics.total_work == 12


class TestDerivedProperties:
    def test_speedup_is_one_when_no_work(self):
        metrics = RuntimeMetrics()
        assert metrics.parallel_speedup == 1.0
        metrics.record_round_work([])
        assert metrics.parallel_speedup == 1.0

    def test_speedup_ratio(self):
        metrics = RuntimeMetrics()
        metrics.record_round_work([5, 5, 5, 5])  # serial 20, critical 5
        assert metrics.parallel_speedup == pytest.approx(4.0)

    def test_summary_keys_and_values(self):
        metrics = RuntimeMetrics()
        metrics.rounds = 2
        metrics.record_round_work([1, 3])
        metrics.record_round_work([2])
        summary = metrics.summary()
        assert summary == {
            "rounds": 2,
            "messages": 0,
            "bytes": 0,
            "total_work": 6,
            "critical_path_work": 5,
            "parallel_speedup": pytest.approx(1.2),
            "parallel_round_work": [3, 2],
            "serial_round_work": [4, 2],
        }

    def test_summary_series_are_copies(self):
        metrics = RuntimeMetrics()
        metrics.record_round_work([1])
        summary = metrics.summary()
        summary["parallel_round_work"].append(99)
        assert metrics.parallel_round_work == [1]
