"""Dedicated tests for ParallelBidEvaluator (serial/pooled equivalence,
validation, lifecycle) — previously covered only indirectly through the
simulator."""

from __future__ import annotations

import pytest

from repro.core.agents import ReplicaAgent
from repro.drp.benefit import BenefitEngine
from repro.drp.state import ReplicationState
from repro.obs import capture
from repro.runtime.parallel import ParallelBidEvaluator
from repro.runtime.simulator import SemiDistributedSimulator


@pytest.fixture()
def agents_and_engine(tiny_instance):
    state = ReplicationState.primaries_only(tiny_instance)
    engine = BenefitEngine(tiny_instance, state)
    agents = [ReplicaAgent(server=i) for i in range(tiny_instance.n_servers)]
    return agents, engine


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive_workers(self, bad):
        with pytest.raises(ValueError, match="max_workers"):
            ParallelBidEvaluator(max_workers=bad)

    def test_none_means_serial(self):
        evaluator = ParallelBidEvaluator(max_workers=None)
        assert evaluator.max_workers is None
        assert evaluator._pool is None
        evaluator.close()


class TestEquivalence:
    def test_serial_vs_pooled_bids_identical(self, agents_and_engine):
        agents, engine = agents_and_engine
        with ParallelBidEvaluator(None) as serial, ParallelBidEvaluator(4) as pooled:
            serial_bids = serial.evaluate(agents, engine)
            pooled_bids = pooled.evaluate(agents, engine)
        assert len(serial_bids) == len(pooled_bids)
        for s, p in zip(serial_bids, pooled_bids):
            if s is None:
                assert p is None
            else:
                assert (s.agent, s.obj) == (p.agent, p.obj)
                assert s.value == pytest.approx(p.value)

    def test_simulator_scheme_independent_of_workers(self, tiny_instance):
        serial = SemiDistributedSimulator(max_workers=None).run(tiny_instance)
        pooled = SemiDistributedSimulator(max_workers=4).run(tiny_instance)
        assert (serial.state.x == pooled.state.x).all()
        assert serial.otc == pytest.approx(pooled.otc)

    def test_empty_agent_list(self):
        with ParallelBidEvaluator(2) as evaluator:
            assert evaluator.evaluate([], None) == []


class TestLifecycle:
    def test_context_manager_closes_pool(self):
        with ParallelBidEvaluator(2) as evaluator:
            assert evaluator._pool is not None
            assert not evaluator.closed
        assert evaluator.closed
        assert evaluator._pool is None

    def test_evaluate_after_close_raises(self, agents_and_engine):
        agents, engine = agents_and_engine
        evaluator = ParallelBidEvaluator(2)
        evaluator.close()
        with pytest.raises(RuntimeError, match="closed"):
            evaluator.evaluate(agents, engine)

    def test_close_is_idempotent(self):
        evaluator = ParallelBidEvaluator(2)
        evaluator.close()
        evaluator.close()
        assert evaluator.closed


class TestObservability:
    def test_counts_sweeps_and_bids(self, agents_and_engine):
        agents, engine = agents_and_engine
        with capture() as tracer:
            with ParallelBidEvaluator(None) as evaluator:
                evaluator.evaluate(agents, engine)
                evaluator.evaluate(agents, engine)
        assert tracer.counters["parallel/sweeps"] == 2
        assert tracer.counters["parallel/bids_evaluated"] == 2 * len(agents)
