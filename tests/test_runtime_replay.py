"""Tests for the discrete request-replay verifier."""

import numpy as np
import pytest

from repro.core.agt_ram import run_agt_ram
from repro.drp.cost import otc_breakdown
from repro.drp.instance import DRPInstance, build_instance
from repro.drp.state import ReplicationState
from repro.errors import ConfigurationError
from repro.runtime.replay import replay_requests, replay_trace
from repro.topology import random_graph
from repro.workload.clients import map_clients_to_servers
from repro.workload.stats import trace_to_matrices
from repro.workload.synthetic import SyntheticWorkload
from repro.workload.worldcup import WorldCupLogGenerator


def matrices_to_requests(reads: np.ndarray, writes: np.ndarray):
    """Expand count matrices into individual request arrays."""
    servers, objects, kinds = [], [], []
    m, n = reads.shape
    for i in range(m):
        for k in range(n):
            servers.extend([i] * int(reads[i, k]))
            objects.extend([k] * int(reads[i, k]))
            kinds.extend([True] * int(reads[i, k]))
            servers.extend([i] * int(writes[i, k]))
            objects.extend([k] * int(writes[i, k]))
            kinds.extend([False] * int(writes[i, k]))
    return np.array(servers), np.array(objects), np.array(kinds, dtype=bool)


@pytest.fixture(scope="module")
def small_setup():
    topo = random_graph(8, 0.5, seed=1)
    w = SyntheticWorkload(
        reads=np.random.default_rng(2).integers(0, 5, size=(8, 12)),
        writes=np.random.default_rng(3).integers(0, 2, size=(8, 12)),
        sizes=np.random.default_rng(4).integers(1, 4, size=12),
        rw_ratio=0.7,
    )
    return build_instance(topo, w, capacity_fraction=0.5, seed=5)


class TestReplayMatchesClosedForm:
    def test_primaries_only(self, small_setup):
        inst = small_setup
        state = ReplicationState.primaries_only(inst)
        s, o, r = matrices_to_requests(inst.reads, inst.writes)
        realized = replay_requests(inst, state, s, o, r)
        closed = otc_breakdown(state)
        assert realized.read_cost == pytest.approx(closed.read_cost)
        assert realized.write_cost == pytest.approx(closed.write_cost)

    def test_after_mechanism(self, small_setup):
        inst = small_setup
        res = run_agt_ram(inst)
        s, o, r = matrices_to_requests(inst.reads, inst.writes)
        realized = replay_requests(inst, res.state, s, o, r)
        assert realized.total == pytest.approx(res.otc)

    def test_counts(self, small_setup):
        inst = small_setup
        state = ReplicationState.primaries_only(inst)
        s, o, r = matrices_to_requests(inst.reads, inst.writes)
        realized = replay_requests(inst, state, s, o, r)
        assert realized.n_reads == int(inst.reads.sum())
        assert realized.n_writes == int(inst.writes.sum())
        assert realized.n_transfers >= realized.n_reads + realized.n_writes

    def test_empty_replay(self, small_setup):
        state = ReplicationState.primaries_only(small_setup)
        realized = replay_requests(
            small_setup, state, np.array([]), np.array([]), np.array([], dtype=bool)
        )
        assert realized.total == 0.0

    def test_out_of_range_rejected(self, small_setup):
        state = ReplicationState.primaries_only(small_setup)
        with pytest.raises(ConfigurationError):
            replay_requests(
                small_setup, state, np.array([99]), np.array([0]), np.array([True])
            )

    def test_length_mismatch_rejected(self, small_setup):
        state = ReplicationState.primaries_only(small_setup)
        with pytest.raises(ConfigurationError):
            replay_requests(
                small_setup, state, np.array([0]), np.array([0, 1]),
                np.array([True]),
            )


class TestTraceReplayPipeline:
    def test_full_pipeline_consistency(self):
        """trace -> aggregation -> instance -> closed-form OTC must equal
        the same trace replayed request-by-request."""
        gen = WorldCupLogGenerator(n_objects=25, n_clients=10, seed=7,
                                   write_fraction=0.15)
        trace = gen.sample_trace(1_200)
        topo = random_graph(6, 0.5, seed=8)
        mapping = map_clients_to_servers(trace.n_clients, 6, seed=9)
        reads, writes = trace_to_matrices(trace, mapping, 6)
        inst = build_instance(
            topo,
            SyntheticWorkload(
                reads=reads,
                writes=writes,
                sizes=np.asarray(trace.catalog.sizes),
                rw_ratio=trace.read_write_ratio(),
            ),
            capacity_fraction=0.4,
            seed=10,
        )
        res = run_agt_ram(inst)
        realized = replay_trace(inst, res.state, trace, mapping)
        assert realized.total == pytest.approx(res.otc)

    def test_mapping_shape_checked(self, small_setup):
        gen = WorldCupLogGenerator(n_objects=10, n_clients=4, seed=1)
        trace = gen.sample_trace(50)
        state = ReplicationState.primaries_only(small_setup)
        with pytest.raises(ConfigurationError):
            replay_trace(small_setup, state, trace, np.array([0, 1]))
