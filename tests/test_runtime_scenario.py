"""Tests for the composed-scenario DSL, campaign gates, and shrinking."""

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.obs.audit import audit_sharded_events
from repro.runtime.scenario import (
    CATALOG,
    AdversaryPlane,
    FaultPlane,
    PartitionPlane,
    Scenario,
    materialize,
    run_scenario,
    scenario_fails,
    shrink_scenario,
)


@pytest.fixture(scope="module")
def showcase_outcome():
    return run_scenario(CATALOG["showcase"])


class TestPlaneRoundTrips:
    def test_fault_plane(self):
        p = FaultPlane(crash_rate=0.05, straggler_rate=0.1,
                       serving_crash_rate=0.02, checkpoint_period=4)
        assert FaultPlane.from_dict(json.loads(json.dumps(p.to_dict()))) == p

    def test_adversary_plane_with_window(self):
        p = AdversaryPlane(fraction=0.2, behaviors=("inflate",),
                           window=(3, 9), strikes=2)
        back = AdversaryPlane.from_dict(json.loads(json.dumps(p.to_dict())))
        assert back == p
        assert back.window == (3, 9)

    def test_partition_plane_explicit(self):
        p = PartitionPlane(
            windows=({"start": 2, "end": 5, "islands": [0, 1]},),
            central_crashes=((4, 0),),
        )
        assert p.explicit
        back = PartitionPlane.from_dict(json.loads(json.dumps(p.to_dict())))
        assert back == p

    def test_partition_plane_random_is_not_explicit(self):
        assert not PartitionPlane(fraction=0.3).explicit

    def test_plane_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlane(crash_rate=1.0)
        with pytest.raises(ConfigurationError):
            AdversaryPlane(fraction=1.5)


class TestScenarioRoundTrip:
    def test_full_composition_round_trips_through_json(self):
        sc = Scenario(
            name="rt", seed=42, workload="drift",
            faults=FaultPlane(crash_rate=0.03),
            adversary=AdversaryPlane(fraction=0.25, window=(0, 8)),
            partition=PartitionPlane(fraction=0.2),
            availability_floor=0.8, min_availability=0.9,
        )
        assert Scenario.from_dict(json.loads(json.dumps(sc.to_dict()))) == sc

    def test_null_planes_round_trip_as_none(self):
        sc = Scenario(name="bare", seed=1)
        back = Scenario.from_dict(sc.to_dict())
        assert back.faults is None
        assert back.adversary is None
        assert back.partition is None
        assert back == sc

    def test_from_dict_ignores_unknown_keys(self):
        d = Scenario(name="x").to_dict()
        d["future_knob"] = 123
        assert Scenario.from_dict(d).name == "x"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Scenario(workload="nope")
        with pytest.raises(ConfigurationError):
            Scenario(horizon=0)
        with pytest.raises(ConfigurationError):
            Scenario(regions=0)

    def test_lottery_is_deterministic_per_ticket(self):
        assert Scenario.random(5) == Scenario.random(5)
        assert Scenario.random(5) != Scenario.random(6)
        # Draws are JSON round-trippable like any scenario.
        sc = Scenario.random(11)
        assert Scenario.from_dict(json.loads(json.dumps(sc.to_dict()))) == sc


class TestCatalog:
    def test_names_match_keys_and_round_trip(self):
        for key, sc in CATALOG.items():
            assert sc.name == key
            assert Scenario.from_dict(sc.to_dict()) == sc

    def test_smoke_passes_its_gates(self):
        out = run_scenario(CATALOG["smoke"])
        assert out.ok, out.failures
        assert out.report["serving"]["availability"] >= 0.9

    def test_showcase_survives_the_composed_storm(self, showcase_outcome):
        out = showcase_outcome
        assert out.ok, out.failures
        # All four planes actually materialized.
        assert out.report["planes"] == {
            "faults": True, "serving_faults": True,
            "adversary": True, "partition": True,
        }
        assert out.report["serving"]["availability"] >= 0.95
        assert out.report["invariants"]["violations"] == 0
        assert out.report["audits"]["sharded_ok"]
        assert out.report["audits"]["serving_ok"]
        assert out.report["audits"]["reauction_ok"]
        # The scripted partition produced real split-brain work.
        assert out.report["placement"]["conflicts"] > 0
        assert out.report["recovery"]["n_incidents"] > 0

    def test_showcase_report_is_byte_reproducible(self, showcase_outcome):
        again = run_scenario(CATALOG["showcase"])
        assert json.dumps(again.report, sort_keys=True) == json.dumps(
            showcase_outcome.report, sort_keys=True
        )

    def test_materialize_null_scenario_has_no_planes(self):
        mat = materialize(Scenario(name="bare", seed=3))
        assert mat.fault_plan is None
        assert mat.serving_faults is None
        assert mat.adversary is None
        assert mat.quarantine is None
        assert mat.partition is None


class TestComposedAudit:
    """Satellite: the composed mechanism log stays audit-clean, and any
    single plane's declarations cannot be tampered with undetected."""

    def test_composed_log_passes_sharded_audit(self, showcase_outcome):
        mech = showcase_outcome.events[: showcase_outcome.split]
        assert audit_sharded_events(mech).ok

    def test_payment_tamper_is_detected(self, showcase_outcome):
        mech = list(showcase_outcome.events[: showcase_outcome.split])
        i = next(
            k for k, e in enumerate(mech)
            if isinstance(e, ev.PaymentEvent) and e.amount > 0
        )
        mech[i] = dataclasses.replace(mech[i], amount=mech[i].amount * 10 + 5)
        assert not audit_sharded_events(mech).ok

    def test_winner_tamper_is_detected(self, showcase_outcome):
        mech = list(showcase_outcome.events[: showcase_outcome.split])
        i = next(
            k for k, e in enumerate(mech) if isinstance(e, ev.WinnerEvent)
        )
        mech[i] = dataclasses.replace(mech[i], value=mech[i].value * 10 + 7)
        assert not audit_sharded_events(mech).ok

    def test_dropped_reconcile_is_detected(self, showcase_outcome):
        mech = showcase_outcome.events[: showcase_outcome.split]
        stripped = [e for e in mech if not isinstance(e, ev.ReconcileEvent)]
        assert len(stripped) < len(mech)  # the split actually reconciled
        assert not audit_sharded_events(stripped).ok


class TestShrinking:
    def test_impossible_gate_shrinks_to_a_minimal_repro(self):
        broken = dataclasses.replace(
            CATALOG["smoke"], name="broken", min_availability=1.01
        )
        assert scenario_fails(broken)
        shrunk, probes = shrink_scenario(broken, scenario_fails)
        assert 0 < probes <= 64
        assert shrunk.name == "broken-shrunk"
        # An unreachable availability bound fails with every plane
        # stripped, so the shrinker removes all of them.
        assert shrunk.faults is None
        assert shrunk.adversary is None
        assert shrunk.partition is None
        assert shrunk.n_requests < broken.n_requests
        # The minimized scenario still reproduces the failure.
        assert scenario_fails(shrunk)
        # ... and round-trips, so the written repro file is usable.
        assert Scenario.from_dict(shrunk.to_dict()) == shrunk

    def test_passing_scenario_does_not_shrink(self):
        sc = CATALOG["smoke"]
        shrunk, probes = shrink_scenario(sc, scenario_fails)
        assert shrunk == sc
        assert probes > 0  # it did probe, nothing reproduced

    def test_crashing_candidate_counts_as_failing(self):
        def fails(sc):
            raise RuntimeError("boom")

        broken = dataclasses.replace(CATALOG["smoke"], name="crashy")
        shrunk, _ = shrink_scenario(broken, fails, max_steps=3)
        assert shrunk.name == "crashy-shrunk"


class TestStrictMode:
    def test_strict_run_of_a_clean_scenario_completes(self):
        out = run_scenario(CATALOG["smoke"], strict=True)
        assert out.ok, out.failures
