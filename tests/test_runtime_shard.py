"""Tests for the partition-tolerant sharded central (repro.runtime.shard)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchical import HierarchicalAGTRam, partition_by_proximity
from repro.drp.feasibility import check_state
from repro.drp.instance import DRPInstance
from repro.errors import ConfigurationError
from repro.obs import events as ev
from repro.obs.audit import audit_sharded_events
from repro.runtime.messages import BidMessage
from repro.runtime.shard import (
    PartitionSchedule,
    PartitionWindow,
    ShardAllocation,
    ShardedAGTRam,
    central_id,
    reconcile_divergence,
)

from _strategies import drp_instances


# -- schedule data model -----------------------------------------------------


class TestPartitionWindow:
    def test_validates_bounds(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=5, end=5, islands=(0, 1))
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=-1, end=3, islands=(0, 1))

    def test_requires_dense_islands(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=0, end=3, islands=(0, 2))

    def test_requires_a_real_split(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=0, end=3, islands=(0, 0, 0))
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=0, end=3, islands=())

    def test_round_trips_through_dict(self):
        w = PartitionWindow(start=2, end=9, islands=(0, 1, 0, 1))
        assert PartitionWindow.from_dict(w.to_dict()) == w
        json.dumps(w.to_dict())


class TestPartitionSchedule:
    def test_null_is_null(self):
        plan = PartitionSchedule.null(4)
        assert plan.is_null
        assert plan.n_regions == 4
        assert not plan.windows

    def test_rejects_overlapping_windows(self):
        w1 = PartitionWindow(start=0, end=5, islands=(0, 1))
        w2 = PartitionWindow(start=3, end=8, islands=(0, 1))
        with pytest.raises(ConfigurationError):
            PartitionSchedule(n_regions=2, windows=(w1, w2))

    def test_rejects_region_count_mismatch(self):
        w = PartitionWindow(start=0, end=5, islands=(0, 1))
        with pytest.raises(ConfigurationError):
            PartitionSchedule(n_regions=3, windows=(w,))

    def test_rejects_out_of_range_crash(self):
        with pytest.raises(ConfigurationError):
            PartitionSchedule(n_regions=2, central_crashes=((3, 7),))

    def test_windows_are_sorted(self):
        w1 = PartitionWindow(start=10, end=12, islands=(0, 1))
        w2 = PartitionWindow(start=0, end=5, islands=(1, 0))
        plan = PartitionSchedule(n_regions=2, windows=(w1, w2))
        assert [w.start for w in plan.windows] == [0, 10]

    def test_random_is_deterministic(self):
        kw = dict(
            n_regions=4, horizon=60, seed=9, partition_fraction=0.4,
            crash_rate=0.05,
        )
        a = PartitionSchedule.random(**kw)
        b = PartitionSchedule.random(**kw)
        assert a == b
        assert a.windows, "fraction 0.4 over 60 rounds should partition"

    def test_random_respects_zero_fraction(self):
        plan = PartitionSchedule.random(
            n_regions=4, horizon=60, seed=9, partition_fraction=0.0
        )
        assert not plan.windows

    def test_random_validates_arguments(self):
        with pytest.raises(ConfigurationError):
            PartitionSchedule.random(
                n_regions=4, horizon=10, partition_fraction=1.5
            )
        with pytest.raises(ConfigurationError):
            PartitionSchedule.random(
                n_regions=1, horizon=10, partition_fraction=0.5
            )
        with pytest.raises(ConfigurationError):
            PartitionSchedule.random(n_regions=4, horizon=10, crash_rate=2.0)

    def test_json_round_trip(self):
        plan = PartitionSchedule.random(
            n_regions=4, horizon=80, seed=3, partition_fraction=0.5,
            crash_rate=0.02,
        )
        blob = json.dumps(plan.to_dict())
        assert PartitionSchedule.from_dict(json.loads(blob)) == plan


# -- reconciliation (pure) ---------------------------------------------------


def _commit(region, server, obj, value, rnd=0, payment=0.0):
    return ShardAllocation(
        region=region, server=server, obj=obj, value=value,
        payment=payment, round=rnd,
    )


class TestReconcileDivergence:
    ISLANDS = {0: 0, 1: 0, 2: 1, 3: 1}

    def test_single_island_never_conflicts(self):
        commits = [_commit(0, 1, 7, 5.0), _commit(1, 2, 7, 9.0)]
        out = reconcile_divergence(commits, self.ISLANDS)
        assert out.conflicts == ()
        assert out.revoked == ()

    def test_highest_value_wins(self):
        commits = [_commit(0, 1, 7, 5.0), _commit(2, 4, 7, 9.0)]
        out = reconcile_divergence(commits, self.ISLANDS)
        assert out.conflicts == (7,)
        assert out.kept[0].server == 4
        assert [c.server for c in out.revoked] == [1]

    def test_value_tie_breaks_to_lowest_server(self):
        commits = [_commit(2, 4, 7, 5.0), _commit(0, 1, 7, 5.0)]
        out = reconcile_divergence(commits, self.ISLANDS)
        assert out.kept[0].server == 1

    def test_uncontested_commits_untouched(self):
        commits = [
            _commit(0, 1, 7, 5.0),
            _commit(2, 4, 7, 9.0),
            _commit(3, 5, 8, 2.0),
        ]
        out = reconcile_divergence(commits, self.ISLANDS)
        assert out.conflicts == (7,)
        assert all(c.obj == 7 for c in out.kept + out.revoked)


class TestReconcileProperties:
    @staticmethod
    @st.composite
    def commit_sets(draw):
        n_regions = draw(st.integers(min_value=2, max_value=4))
        islands = {
            r: draw(st.integers(min_value=0, max_value=1))
            for r in range(n_regions)
        }
        n = draw(st.integers(min_value=0, max_value=12))
        commits = []
        used = set()
        for i in range(n):
            region = draw(st.integers(min_value=0, max_value=n_regions - 1))
            server = draw(st.integers(min_value=0, max_value=7))
            obj = draw(st.integers(min_value=0, max_value=4))
            if (server, obj) in used:
                continue
            used.add((server, obj))
            value = float(
                draw(st.integers(min_value=1, max_value=100))
            )
            commits.append(_commit(region, server, obj, value, rnd=i))
        return commits, islands

    @settings(max_examples=60, deadline=None)
    @given(data=commit_sets())
    def test_order_independent(self, data):
        commits, islands = data
        out1 = reconcile_divergence(commits, islands)
        out2 = reconcile_divergence(list(reversed(commits)), islands)
        assert out1 == out2

    @settings(max_examples=60, deadline=None)
    @given(data=commit_sets())
    def test_idempotent(self, data):
        commits, islands = data
        out = reconcile_divergence(commits, islands)
        revoked = set(out.revoked)
        survivors = [c for c in commits if c not in revoked]
        again = reconcile_divergence(survivors, islands)
        assert again.conflicts == ()
        assert again.revoked == ()

    @settings(max_examples=60, deadline=None)
    @given(data=commit_sets())
    def test_one_survivor_per_conflict(self, data):
        commits, islands = data
        out = reconcile_divergence(commits, islands)
        assert len(out.kept) == len(out.conflicts)
        for winner in out.kept:
            group = [c for c in commits if c.obj == winner.obj]
            assert winner.value == max(c.value for c in group)
        # kept and revoked partition the contested commits exactly.
        contested = [c for c in commits if c.obj in set(out.conflicts)]
        assert sorted(
            (c.server, c.obj) for c in out.kept + out.revoked
        ) == sorted((c.server, c.obj) for c in contested)


class TestPartitionProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        instance=drp_instances(),
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_proximity_partition_is_a_true_partition(self, instance, k, seed):
        k = min(k, instance.n_servers)
        part = partition_by_proximity(instance, k, seed=seed)
        # Every server in exactly one region, region ids dense from 0,
        # every region populated, and the labels are a pure function of
        # the seed.
        assert part.shape == (instance.n_servers,)
        assert set(np.unique(part)) == set(range(k))
        again = partition_by_proximity(instance, k, seed=seed)
        assert np.array_equal(part, again)


# -- healthy runs ------------------------------------------------------------


class TestNullEquivalence:
    def test_matches_hierarchical_concurrent(self, tiny_instance):
        h = HierarchicalAGTRam(
            n_regions=4, mode="concurrent", seed=7
        ).run(tiny_instance)
        s = ShardedAGTRam(n_regions=4, seed=7).run(tiny_instance)
        assert np.array_equal(h.state.x, s.state.x)
        assert s.otc == h.otc
        assert s.rounds == h.rounds

    def test_event_stream_matches_hierarchical(self, tiny_instance):
        def stream(runner):
            with ev.capture() as sink, ev.logical_time():
                runner.run(tiny_instance)
            out = [e.to_dict() for e in sink.events]
            for d in out:
                if d["type"] in ("run_start", "run_end"):
                    d.pop("algorithm", None)  # labels differ by design
            return out

        h = stream(HierarchicalAGTRam(n_regions=4, mode="concurrent", seed=7))
        s = stream(ShardedAGTRam(n_regions=4, seed=7))
        assert h == s

    def test_null_plan_byte_identical_to_no_plan(self, tiny_instance):
        def run(plan):
            with ev.capture() as sink, ev.logical_time():
                result = ShardedAGTRam(
                    n_regions=4, seed=7, plan=plan
                ).run(tiny_instance)
            return result, [e.to_dict() for e in sink.events]

        plain, plain_events = run(None)
        null, null_events = run(PartitionSchedule.null(4))
        assert null_events == plain_events
        assert null.extra["messages"] == plain.extra["messages"]
        assert null.extra["message_bytes"] == plain.extra["message_bytes"]
        assert np.array_equal(null.state.x, plain.state.x)

    def test_sharded_audit_passes(self, tiny_instance):
        with ev.capture() as sink, ev.logical_time():
            ShardedAGTRam(n_regions=4, seed=7).run(tiny_instance)
        report = audit_sharded_events(sink.events)
        assert report.ok, report.summary()
        assert report.partitions_seen == 0

    def test_engine_choice_is_invisible(self, tiny_instance):
        naive = ShardedAGTRam(n_regions=4, seed=7, engine="naive").run(
            tiny_instance
        )
        fast = ShardedAGTRam(n_regions=4, seed=7, engine="vectorized").run(
            tiny_instance
        )
        assert np.array_equal(naive.state.x, fast.state.x)
        assert naive.extra["payments"] == pytest.approx(
            fast.extra["payments"]
        )
        assert naive.extra["engine"] == "naive"
        assert fast.extra["engine"] == "vectorized"

    def test_bad_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedAGTRam(engine="turbo")


class TestQuiescence:
    def test_message_reduction_vs_flat(self, tiny_instance):
        from repro.runtime.simulator import SemiDistributedSimulator

        flat = SemiDistributedSimulator().run(tiny_instance)
        flat_msgs = sum(flat.extra["metrics"].log.counts.values())
        sharded = ShardedAGTRam(n_regions=8, seed=2007).run(tiny_instance)
        assert sharded.otc == pytest.approx(flat.otc)
        # The acceptance bar: the sharded protocol halves the traffic.
        assert flat_msgs / sharded.extra["messages"] >= 2.0

    def test_quiescent_regions_send_no_bids(self, tiny_instance):
        result = ShardedAGTRam(
            n_regions=8, seed=2007, keep_messages=True
        ).run(tiny_instance)
        part = result.extra["partition"]
        stats = result.extra["region_stats"]
        active_rows = {
            a
            for a in range(tiny_instance.n_servers)
            if stats[int(part[a])].allocations > 0
        }
        senders = {
            m.sender
            for m in result.extra["message_log"].messages
            if isinstance(m, BidMessage)
        }
        assert senders, "somebody must have bid"
        assert senders <= active_rows


# -- partitioned runs --------------------------------------------------------


@pytest.fixture()
def conflict_instance() -> DRPInstance:
    """Two 2-server clusters (intra cost 1, cross cost 10) that both
    want object 0 during a split: server 2's benefit dwarfs the rest,
    so reconciliation must keep (2, 0) and revoke the islands' other
    commits of object 0."""
    cost = np.array(
        [
            [0.0, 1.0, 10.0, 10.0],
            [1.0, 0.0, 10.0, 10.0],
            [10.0, 10.0, 0.0, 1.0],
            [10.0, 10.0, 1.0, 0.0],
        ]
    )
    reads = np.array([[0, 0], [30, 0], [40, 0], [20, 0]])
    writes = np.zeros((4, 2), dtype=np.int64)
    return DRPInstance(
        cost=cost,
        reads=reads,
        writes=writes,
        sizes=np.array([1, 1]),
        capacities=np.array([3, 3, 3, 3]),
        primaries=np.array([0, 0]),
        name="conflict",
    )


SPLIT = PartitionSchedule(
    n_regions=2,
    windows=(PartitionWindow(start=0, end=10, islands=(0, 1)),),
)
TWO_REGIONS = np.array([0, 0, 1, 1])


class TestSplitBrainReconciliation:
    def run_split(self, instance):
        with ev.capture() as sink, ev.logical_time():
            result = ShardedAGTRam(
                partition=TWO_REGIONS, plan=SPLIT
            ).run(instance)
        return result, sink

    def test_conflict_detected_and_revoked(self, conflict_instance):
        result, _ = self.run_split(conflict_instance)
        assert result.extra["conflicts"] == 1
        assert result.extra["revocations"] == 2
        assert result.extra["refunded_capacity"] == 2
        assert result.extra["reauctioned"] == [0]
        assert result.extra["windows"] == 1
        assert result.extra["heals"] == 1

    def test_merged_placement_matches_unpartitioned(self, conflict_instance):
        result, _ = self.run_split(conflict_instance)
        base = ShardedAGTRam(partition=TWO_REGIONS).run(conflict_instance)
        # Revoked replicas are re-auctioned post-heal, so the healed
        # market converges to the unpartitioned placement.
        assert np.array_equal(result.state.x, base.state.x)
        assert result.otc == pytest.approx(base.otc)
        check_state(result.state)

    def test_no_double_allocation_and_feasible(self, conflict_instance):
        result, _ = self.run_split(conflict_instance)
        assert result.state.x.max() <= 1
        check_state(result.state)

    def test_reconcile_event_declares_everything(self, conflict_instance):
        _, sink = self.run_split(conflict_instance)
        by_type = {}
        for e in sink.events:
            by_type.setdefault(type(e).type, []).append(e)
        assert len(by_type["partition"]) == 1
        assert len(by_type["heal"]) == 1
        assert len(by_type["reconcile"]) == 1
        rec = by_type["reconcile"][0]
        assert rec.conflicts == (0,)
        assert rec.kept == ((2, 0),)
        assert rec.revoked == ((1, 0), (3, 0))
        assert rec.reauctioned == (0,)
        heal = by_type["heal"][0]
        assert heal.islands == (0, 1)
        assert heal.divergent == 3

    def test_revoked_payments_are_clawed_back(self, conflict_instance):
        result, _ = self.run_split(conflict_instance)
        base = ShardedAGTRam(partition=TWO_REGIONS).run(conflict_instance)
        # After refunds + re-auction the books match the unpartitioned
        # run's payments.
        assert result.extra["payments"] == pytest.approx(
            base.extra["payments"]
        )
        assert result.extra["refunded_payment"] >= 0.0

    def test_sharded_audit_verifies_the_merge(self, conflict_instance):
        _, sink = self.run_split(conflict_instance)
        report = audit_sharded_events(sink.events)
        assert report.ok, report.summary()
        assert report.partitions_seen == 1
        assert report.revocations_seen == 2

    def test_audit_catches_undeclared_divergence(self, conflict_instance):
        _, sink = self.run_split(conflict_instance)
        tampered = [
            e for e in sink.events if type(e).type != "reconcile"
        ]
        report = audit_sharded_events(tampered)
        assert not report.ok
        assert any(
            "heal without a reconcile" in v.detail
            for v in report.cross_violations
        )

    def test_audit_catches_false_declaration(self, conflict_instance):
        _, sink = self.run_split(conflict_instance)
        doctored = []
        for e in sink.events:
            if type(e).type == "reconcile":
                # Claim the loser won: the independent re-derivation
                # inside the audit must disagree.
                e = ev.ReconcileEvent(
                    t=e.t, round=e.round, conflicts=e.conflicts,
                    kept=((1, 0),), revoked=((2, 0), (3, 0)),
                    refunded_capacity=e.refunded_capacity,
                    refunded_payment=e.refunded_payment,
                    reauctioned=e.reauctioned,
                )
            doctored.append(e)
        report = audit_sharded_events(doctored)
        assert not report.ok


class TestPartitionedCampaignRuns:
    def test_random_partition_run_is_sound(self, tiny_instance):
        base = ShardedAGTRam(n_regions=8, seed=2007).run(tiny_instance)
        plan = PartitionSchedule.random(
            n_regions=8, horizon=max(1, base.rounds), seed=2007,
            partition_fraction=0.5, crash_rate=0.01,
        )
        with ev.capture() as sink, ev.logical_time():
            result = ShardedAGTRam(
                n_regions=8, seed=2007, plan=plan
            ).run(tiny_instance)
        check_state(result.state)
        assert result.extra["windows"] >= 1
        assert result.extra["heals"] == result.extra["windows"]
        report = audit_sharded_events(sink.events)
        assert report.ok, report.summary()
        assert result.otc == pytest.approx(base.otc)

    def test_run_is_deterministic(self, tiny_instance):
        plan = PartitionSchedule.random(
            n_regions=4, horizon=20, seed=5, partition_fraction=0.4
        )

        def run():
            with ev.capture() as sink, ev.logical_time():
                ShardedAGTRam(
                    n_regions=4, seed=7, plan=plan
                ).run(tiny_instance)
            return [e.to_dict() for e in sink.events]

        assert run() == run()

    def test_plan_region_mismatch_rejected(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            ShardedAGTRam(
                n_regions=4, seed=7, plan=PartitionSchedule.null(5)
            ).run(tiny_instance)


class TestRegionalCrash:
    def test_crash_elects_and_recovers(self, conflict_instance):
        plan = PartitionSchedule(
            n_regions=2, central_crashes=((0, 1), (1, 0))
        )
        with ev.capture() as sink, ev.logical_time():
            result = ShardedAGTRam(
                partition=TWO_REGIONS, plan=plan
            ).run(conflict_instance)
        assert result.extra["crashes_injected"] == 2
        assert result.extra["elections"] == 2
        assert result.extra["recoveries"] == 2
        check_state(result.state)
        kinds = [type(e).type for e in sink.events]
        assert kinds.count("election") == 2
        assert kinds.count("recovery") == 2
        faults = [e for e in sink.events if type(e).type == "fault"]
        assert {f.kind for f in faults} == {"central_crash"}
        # A stalled round delays but does not change the outcome.
        base = ShardedAGTRam(partition=TWO_REGIONS).run(conflict_instance)
        assert np.array_equal(result.state.x, base.state.x)

    def test_crash_log_passes_sharded_audit(self, conflict_instance):
        plan = PartitionSchedule(n_regions=2, central_crashes=((0, 1),))
        with ev.capture() as sink, ev.logical_time():
            ShardedAGTRam(
                partition=TWO_REGIONS, plan=plan
            ).run(conflict_instance)
        report = audit_sharded_events(sink.events)
        assert report.ok, report.summary()
        assert report.elections_seen == 1
        assert report.recoveries_seen == 1


class TestCentralId:
    def test_regional_addresses_are_negative_and_unique(self):
        ids = [central_id(r) for r in range(6)]
        assert ids[0] == -1  # region 0's central is the flat central
        assert len(set(ids)) == 6
        assert all(i < 0 for i in ids)
