"""Tests for the semi-distributed simulator and parallel evaluator."""

import numpy as np
import pytest

from repro.core.agt_ram import run_agt_ram
from repro.core.strategies import OverProjection
from repro.drp.feasibility import check_state
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.parallel import ParallelBidEvaluator
from repro.runtime.simulator import SemiDistributedSimulator


class TestSimulatorEquivalence:
    def test_matches_vectorized_engine(self, tiny_instance):
        sim = SemiDistributedSimulator().run(tiny_instance)
        eng = run_agt_ram(tiny_instance)
        assert np.array_equal(sim.state.x, eng.state.x)
        assert sim.otc == pytest.approx(eng.otc)
        assert sim.rounds == eng.rounds

    def test_matches_with_deviating_agent(self, tiny_instance):
        strategies = {1: OverProjection(2.0)}
        sim = SemiDistributedSimulator(strategies=strategies).run(tiny_instance)
        eng = run_agt_ram(tiny_instance, strategies=strategies)
        assert np.array_equal(sim.state.x, eng.state.x)

    def test_payments_match(self, tiny_instance):
        sim = SemiDistributedSimulator().run(tiny_instance)
        eng = run_agt_ram(tiny_instance)
        assert np.allclose(sim.extra["payments"], eng.extra["payments"])
        assert np.allclose(sim.extra["utilities"], eng.extra["utilities"])

    def test_parallel_matches_serial(self, tiny_instance):
        serial = SemiDistributedSimulator().run(tiny_instance)
        par = SemiDistributedSimulator(max_workers=4).run(tiny_instance)
        assert np.array_equal(serial.state.x, par.state.x)

    def test_state_feasible(self, tiny_instance):
        check_state(SemiDistributedSimulator().run(tiny_instance).state)


class TestMessageAccounting:
    def test_message_counts_shape(self, tiny_instance):
        res = SemiDistributedSimulator().run(tiny_instance)
        metrics = res.extra["metrics"]
        counts = metrics.log.counts
        rounds = metrics.rounds
        # One payment per allocation round.
        assert counts["PaymentMessage"] == rounds
        # Broadcast + NN updates fan out to all active agents each round.
        assert counts["AllocateMessage"] == counts["NNUpdateMessage"]
        assert counts["AllocateMessage"] >= rounds
        assert counts["BidMessage"] >= rounds

    def test_bytes_positive(self, tiny_instance):
        res = SemiDistributedSimulator().run(tiny_instance)
        assert res.extra["metrics"].log.bytes_total > 0

    def test_parallel_speedup_reported(self, tiny_instance):
        res = SemiDistributedSimulator().run(tiny_instance)
        m = res.extra["metrics"]
        assert m.parallel_speedup >= 1.0
        assert m.critical_path_work <= m.total_work


class TestRuntimeMetrics:
    def test_record_round_work(self):
        m = RuntimeMetrics()
        m.record_round_work([3, 5, 2])
        m.record_round_work([1])
        assert m.total_work == 11
        assert m.critical_path_work == 6
        assert m.parallel_speedup == pytest.approx(11 / 6)

    def test_empty_round(self):
        m = RuntimeMetrics()
        m.record_round_work([])
        assert m.total_work == 0
        assert m.parallel_speedup == 1.0

    def test_summary_keys(self):
        m = RuntimeMetrics()
        s = m.summary()
        assert {"rounds", "messages", "bytes", "parallel_speedup"} <= set(s)


class TestParallelBidEvaluator:
    def test_serial_mode(self, tiny_instance):
        from repro.core.agents import ReplicaAgent
        from repro.drp.benefit import BenefitEngine
        from repro.drp.state import ReplicationState

        state = ReplicationState.primaries_only(tiny_instance)
        engine = BenefitEngine(tiny_instance, state)
        agents = [ReplicaAgent(server=i) for i in range(tiny_instance.n_servers)]
        with ParallelBidEvaluator(None) as ev:
            bids = ev.evaluate(agents, engine)
        assert len(bids) == tiny_instance.n_servers

    def test_parallel_equals_serial(self, tiny_instance):
        from repro.core.agents import ReplicaAgent
        from repro.drp.benefit import BenefitEngine
        from repro.drp.state import ReplicationState

        state = ReplicationState.primaries_only(tiny_instance)
        engine = BenefitEngine(tiny_instance, state)
        agents = [ReplicaAgent(server=i) for i in range(tiny_instance.n_servers)]
        with ParallelBidEvaluator(None) as s, ParallelBidEvaluator(4) as p:
            serial = s.evaluate(agents, engine)
            parallel = p.evaluate(agents, engine)
        assert [(b.obj, b.value) for b in serial if b] == [
            (b.obj, b.value) for b in parallel if b
        ]

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            ParallelBidEvaluator(0)

    def test_close_idempotent(self):
        ev = ParallelBidEvaluator(2)
        ev.close()
        ev.close()


class TestFailedAgents:
    def test_failed_agents_never_bid(self, tiny_instance):
        import numpy as np

        dead = {0, 1, 2}
        res = SemiDistributedSimulator(failed_agents=dead).run(tiny_instance)
        extra = res.state.x.copy()
        cols = np.arange(tiny_instance.n_objects)
        extra[tiny_instance.primaries, cols] = False
        for agent in dead:
            assert not extra[agent].any()
            assert res.extra["payments"][agent] == 0.0

    def test_survivors_still_allocate(self, read_heavy_instance):
        dead = {0}
        res = SemiDistributedSimulator(failed_agents=dead).run(read_heavy_instance)
        assert res.replicas_allocated > 0
        assert res.savings_percent > 0.0

    def test_all_failed_yields_primaries_only(self, tiny_instance):
        dead = set(range(tiny_instance.n_servers))
        res = SemiDistributedSimulator(failed_agents=dead).run(tiny_instance)
        assert res.replicas_allocated == 0

    def test_degradation_bounded_by_healthy(self, read_heavy_instance):
        healthy = SemiDistributedSimulator().run(read_heavy_instance)
        degraded = SemiDistributedSimulator(failed_agents={0, 1}).run(
            read_heavy_instance
        )
        assert degraded.savings_percent <= healthy.savings_percent + 1e-9
