"""Large-scale regression guards (slow; deselect with -m "not slow")."""

import pytest

from repro.core.agt_ram import run_agt_ram
from repro.drp.feasibility import check_state
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import paper_instance


@pytest.mark.slow
class TestLargeScale:
    def test_quarter_paper_scale_runs_in_seconds(self):
        """M=200 power-law nodes x N=1500 objects, 400k requests: the
        mechanism must stay interactive (well under a minute) and sound."""
        cfg = ExperimentConfig(
            n_servers=200,
            n_objects=1_500,
            topology="powerlaw",
            topology_params={"m": 2},
            total_requests=400_000,
            rw_ratio=0.95,
            capacity_fraction=0.35,
            server_skew=1.5,
            seed=77,
            name="scale-guard",
        )
        inst = paper_instance(cfg)
        res = run_agt_ram(inst)
        assert res.runtime_s < 30.0
        assert res.savings_percent > 20.0
        check_state(res.state)

    def test_simulator_matches_engine_at_scale(self):
        from repro.runtime.simulator import SemiDistributedSimulator
        import numpy as np

        cfg = ExperimentConfig(
            n_servers=60,
            n_objects=300,
            total_requests=60_000,
            rw_ratio=0.95,
            capacity_fraction=0.35,
            seed=78,
            name="scale-sim",
        )
        inst = paper_instance(cfg)
        eng = run_agt_ram(inst)
        sim = SemiDistributedSimulator().run(inst)
        assert np.array_equal(eng.state.x, sim.state.x)
