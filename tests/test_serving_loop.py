"""End-to-end tests of the serving loop (repro.serving.loop)."""

from __future__ import annotations

import pytest

from repro.obs import events as ev
from repro.obs.audit import audit_events, audit_serving_events
from repro.obs.export import write_events_jsonl
from repro.runtime.faults import FaultSchedule
from repro.runtime.simulator import SemiDistributedSimulator
from repro.serving import ServeConfig, make_traffic, serve, with_demand


N_REQUESTS = 2000


@pytest.fixture(scope="module")
def served_instance(tiny_instance):
    traffic = make_traffic("worldcup", tiny_instance, N_REQUESTS, seed=11)
    instance = with_demand(tiny_instance, traffic)
    placement = SemiDistributedSimulator().run(instance)
    return instance, placement


def run_campaign(
    served_instance, *, workload="worldcup", faults=None, config=None,
    seed=11, n=N_REQUESTS,
):
    instance, placement = served_instance
    traffic = make_traffic(workload, instance, n, seed=seed)
    with ev.logical_time(), ev.capture() as sink:
        report = serve(
            instance,
            placement.state,
            traffic.stream,
            config=config or ServeConfig(),
            faults=faults or FaultSchedule.null(),
            seed=seed,
            workload=workload,
            n_requests=n,
        )
    return report, sink.events


class TestNullFaults:
    def test_full_availability_no_failovers(self, served_instance):
        report, events = run_campaign(served_instance)
        assert report.availability == 1.0
        assert report.failed == 0
        assert report.timeouts == 0
        assert report.shed == 0
        assert report.served == N_REQUESTS
        assert audit_serving_events(events).ok

    def test_byte_identical_across_runs(self, served_instance, tmp_path):
        logs = []
        for name in ("a.jsonl", "b.jsonl"):
            _, events = run_campaign(served_instance)
            path = tmp_path / name
            write_events_jsonl(events, path)
            logs.append(path.read_bytes())
        assert logs[0] == logs[1]

    def test_report_deterministic(self, served_instance):
        r1, _ = run_campaign(served_instance)
        r2, _ = run_campaign(served_instance)
        assert r1.to_dict() == r2.to_dict()


class TestChaosServing:
    def test_sustains_availability_under_crashes(self, served_instance):
        instance, _ = served_instance
        schedule = FaultSchedule.random(
            n_agents=instance.n_servers,
            horizon=N_REQUESTS // 500 + 1,
            seed=5,
            crash_rate=0.05,
            mean_outage=2.0,
            straggler_rate=0.02,
        )
        report, events = run_campaign(served_instance, faults=schedule)
        assert report.availability >= 0.99
        assert report.p99 < float("inf")
        assert audit_serving_events(events).ok
        assert audit_events(events).ok

    def test_all_replicas_down_fails_request_not_loop(self, line_instance):
        from repro.drp.state import ReplicationState
        from repro.serving.streams import ServeRequest

        state = ReplicationState.primaries_only(line_instance)
        # Object 0's only copy (primary at server 0) is down forever.
        schedule = FaultSchedule(agent_crashes={0: ((0, 10_000),)})
        stream = [ServeRequest(client=1, server=1, obj=0, kind="read")] * 20
        with ev.logical_time(), ev.capture() as sink:
            report = serve(
                line_instance,
                state,
                stream,
                config=ServeConfig(max_reauctions=0),
                faults=schedule,
                seed=0,
            )
        assert report.failed == 20
        assert report.served == 0
        # Failed requests carry replica -1 and still audit cleanly.
        assert audit_serving_events(sink.events).ok


class TestSheddingAndDrift:
    def test_low_rate_sheds(self, served_instance):
        config = ServeConfig(rate=0.5, burst=10.0)
        report, events = run_campaign(served_instance, config=config)
        assert report.shed > 0
        assert report.admitted + report.shed == N_REQUESTS
        # Shedding is not unavailability.
        assert report.availability == 1.0
        assert audit_serving_events(events).ok

    @pytest.mark.parametrize("workload", ["drift", "flashcrowd"])
    def test_drift_triggers_reauction(self, served_instance, workload):
        config = ServeConfig(
            drift_window=400, drift_threshold=0.15, max_reauctions=3
        )
        report, events = run_campaign(
            served_instance, workload=workload, config=config
        )
        assert report.reauctions >= 1
        assert report.reauctions <= 3
        for entry in report.reauction_log:
            assert entry["otc_after"] <= entry["otc_before"]
        # The nested re-auction protocol runs audit cleanly in-stream.
        assert audit_events(events).ok
        assert audit_serving_events(events).ok

    def test_zero_budget_disables_drift_response(self, served_instance):
        config = ServeConfig(
            drift_window=400, drift_threshold=0.15, max_reauctions=0
        )
        report, _ = run_campaign(
            served_instance, workload="drift", config=config
        )
        assert report.reauctions == 0


class TestEventStream:
    def test_serve_start_end_bracket_the_log(self, served_instance):
        _, events = run_campaign(served_instance)
        kinds = [e.to_dict()["type"] for e in events]
        assert kinds[0] == "serve_start"
        assert kinds[-1] == "serve_end"
        assert kinds.count("request") == N_REQUESTS

    def test_no_sink_no_events(self, served_instance):
        instance, placement = served_instance
        traffic = make_traffic("worldcup", instance, 200, seed=11)
        report = serve(
            instance, placement.state, traffic.stream,
            config=ServeConfig(), seed=11, n_requests=200,
        )
        assert report.served == 200
