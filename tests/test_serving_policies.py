"""Unit tests for the serving data-path policies and drift detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    BackoffPolicy,
    DriftDetector,
    EwmaHealth,
    QuantileTracker,
    TokenBucket,
)


class TestBackoffPolicy:
    def test_raw_delay_exponential_until_cap(self):
        b = BackoffPolicy(base=1.0, factor=2.0, cap=8.0)
        assert [b.raw_delay(a) for a in (1, 2, 3, 4, 5)] == [
            1.0, 2.0, 4.0, 8.0, 8.0,
        ]

    def test_jittered_delay_within_band(self):
        b = BackoffPolicy(base=1.0, factor=2.0, cap=8.0, jitter=0.5)
        rng = np.random.default_rng(3)
        for attempt in range(1, 10):
            raw = b.raw_delay(attempt)
            d = b.delay(attempt, rng)
            assert raw * 0.5 <= d <= raw

    def test_zero_jitter_is_exact(self):
        b = BackoffPolicy(jitter=0.0)
        rng = np.random.default_rng(0)
        assert b.delay(3, rng) == b.raw_delay(3)

    def test_deterministic_per_seed(self):
        b = BackoffPolicy()
        seq1 = [b.delay(a, np.random.default_rng(7)) for a in range(1, 6)]
        seq2 = [b.delay(a, np.random.default_rng(7)) for a in range(1, 6)]
        assert seq1 == seq2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy().raw_delay(0)


class TestTokenBucket:
    def test_rate_one_never_sheds(self):
        bucket = TokenBucket(rate=1.0, burst=5.0)
        assert all(bucket.admit() for _ in range(1000))

    def test_half_rate_sheds_half_in_steady_state(self):
        bucket = TokenBucket(rate=0.5, burst=2.0)
        decisions = [bucket.admit() for _ in range(1000)]
        # After the burst drains, every other request is shed.
        steady = decisions[100:]
        assert abs(sum(steady) / len(steady) - 0.5) < 0.05

    def test_burst_absorbs_initial_spike(self):
        bucket = TokenBucket(rate=0.0, burst=10.0)
        admitted = sum(bucket.admit() for _ in range(20))
        assert admitted == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=-1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(burst=0.5)


class TestQuantileTracker:
    def test_inf_until_warm(self):
        t = QuantileTracker(0.95, min_samples=8)
        for _ in range(7):
            t.observe(1.0)
        assert t.quantile() == float("inf")
        t.observe(1.0)
        assert t.quantile() == 1.0

    def test_tracks_trailing_window(self):
        t = QuantileTracker(0.5, window=100, min_samples=10, refresh=1)
        for _ in range(100):
            t.observe(1.0)
        assert t.quantile() == pytest.approx(1.0)
        for _ in range(100):
            t.observe(9.0)
        assert t.quantile() == pytest.approx(9.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuantileTracker(1.5)
        with pytest.raises(ConfigurationError):
            QuantileTracker(0.9, window=0)


class TestEwmaHealth:
    def test_starts_healthy(self):
        h = EwmaHealth(4)
        assert all(h.healthy(s) for s in range(4))

    def test_failures_sink_below_threshold_and_recover(self):
        h = EwmaHealth(2, alpha=0.5, threshold=0.5)
        h.record(0, False)
        h.record(0, False)
        assert not h.healthy(0)
        assert h.healthy(1)  # untouched server unaffected
        h.record(0, True)
        h.record(0, True)
        assert h.healthy(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaHealth(0)
        with pytest.raises(ConfigurationError):
            EwmaHealth(2, alpha=0.0)


class TestDriftDetector:
    def test_quiet_on_matching_traffic(self):
        ref = np.array([3.0, 1.0])
        d = DriftDetector(ref, window=40, threshold=0.2)
        rng = np.random.default_rng(0)
        fired = [
            d.observe(int(rng.choice(2, p=[0.75, 0.25])))
            for _ in range(400)
        ]
        assert not any(fired)

    def test_fires_on_shifted_traffic_and_names_objects(self):
        ref = np.array([10.0, 1.0, 1.0])
        d = DriftDetector(ref, window=50, threshold=0.3, top_k=1)
        fired = False
        for _ in range(50):
            fired = d.observe(2) or fired
        assert fired
        assert d.drifted_objects() == [2]

    def test_rebase_silences_the_new_regime(self):
        ref = np.array([10.0, 1.0])
        d = DriftDetector(ref, window=20, threshold=0.3)
        for _ in range(20):
            d.observe(1)
        assert d.distance() > 0.3
        d.rebase()
        assert not any(d.observe(1) for _ in range(40))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(np.array([0.0, 0.0]))
        with pytest.raises(ConfigurationError):
            DriftDetector(np.array([1.0]), threshold=0.0)
        with pytest.raises(ConfigurationError):
            DriftDetector(np.array([1.0]), window=0)
