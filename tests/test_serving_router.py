"""Unit tests for nearest-replica routing and placement swapping."""

from __future__ import annotations

import numpy as np

from repro.drp.state import ReplicationState
from repro.serving import RequestRouter


def router_on(line_instance, extra=()):
    state = ReplicationState.primaries_only(line_instance)
    for server, obj in extra:
        state.add_replica(server, obj)
    return RequestRouter(line_instance, state)


class TestReadCandidates:
    def test_primaries_only_routes_to_primary(self, line_instance):
        r = router_on(line_instance)
        assert r.read_candidates(0, 0) == [0]
        assert r.read_candidates(0, 1) == [2]

    def test_nearest_first_with_replica(self, line_instance):
        # Object 1 (primary at 2) replicated at 0: origin 0 prefers 0.
        r = router_on(line_instance, extra=[(0, 1)])
        assert r.read_candidates(0, 1) == [0, 2]
        assert r.read_candidates(2, 1) == [2, 0]

    def test_tie_breaks_to_lower_server_id(self, line_instance):
        # Origin 1 is at distance 1 from both 0 and 2.
        r = router_on(line_instance, extra=[(0, 1)])
        assert r.read_candidates(1, 1) == [0, 2]

    def test_exclude_drops_servers(self, line_instance):
        r = router_on(line_instance, extra=[(0, 1)])
        assert r.read_candidates(0, 1, exclude=(0,)) == [2]
        assert r.read_candidates(0, 1, exclude=(0, 2)) == []

    def test_route_read_returns_minus_one_when_empty(self, line_instance):
        r = router_on(line_instance)
        assert r.route_read(0, 0, exclude=(0,)) == -1
        assert r.route_read(1, 0) == 0


class TestWritesAndSwap:
    def test_write_target_is_primary(self, line_instance):
        r = router_on(line_instance, extra=[(0, 1)])
        assert r.write_target(0) == 0
        assert r.write_target(1) == 2

    def test_swap_state_changes_routing(self, line_instance):
        r = router_on(line_instance)
        assert r.read_candidates(0, 1) == [2]
        replicated = ReplicationState.primaries_only(line_instance)
        replicated.add_replica(0, 1)
        old = r.swap_state(replicated)
        assert r.read_candidates(0, 1) == [0, 2]
        assert not old.x[0, 1]

    def test_candidates_match_replica_set(self, tiny_instance):
        from repro.runtime.simulator import SemiDistributedSimulator

        result = SemiDistributedSimulator().run(tiny_instance)
        r = RequestRouter(tiny_instance, result.state)
        for obj in range(0, tiny_instance.n_objects, 7):
            cands = r.read_candidates(3, obj)
            assert sorted(cands) == sorted(
                int(s) for s in result.state.replica_set(obj)
            )
            costs = tiny_instance.cost[3, np.array(cands)]
            assert all(costs[i] <= costs[i + 1] for i in range(len(costs) - 1))
