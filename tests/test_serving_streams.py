"""Unit tests for the serving workload adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    SERVE_WORKLOADS,
    make_traffic,
    with_demand,
    worldcup_stream,
)
from repro.serving.streams import epoch_stream
from repro.workload.drift import drifting_workloads


class TestWorldcupStream:
    def test_deterministic_per_seed(self):
        a = list(worldcup_stream(500, n_servers=8, n_objects=20, seed=4))
        b = list(worldcup_stream(500, n_servers=8, n_objects=20, seed=4))
        assert a == b
        c = list(worldcup_stream(500, n_servers=8, n_objects=20, seed=5))
        assert a != c

    def test_shapes_and_kinds(self):
        reqs = list(worldcup_stream(300, n_servers=8, n_objects=20, seed=1))
        assert len(reqs) == 300
        assert all(0 <= r.server < 8 and 0 <= r.obj < 20 for r in reqs)
        assert {r.kind for r in reqs} <= {"read", "write"}

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            list(worldcup_stream(-1, n_servers=4, n_objects=8))


class TestEpochStream:
    def test_splits_quota_across_epochs(self):
        epochs = drifting_workloads(4, 10, 3, total_requests=500, seed=2)
        reqs = list(epoch_stream(epochs, 100, seed=0))
        assert len(reqs) == 100

    def test_empty_epoch_list_rejected(self):
        with pytest.raises(ConfigurationError):
            list(epoch_stream([], 10))

    def test_deterministic(self):
        epochs = drifting_workloads(4, 10, 2, total_requests=500, seed=2)
        a = list(epoch_stream(epochs, 200, seed=9))
        b = list(epoch_stream(epochs, 200, seed=9))
        assert a == b


class TestMakeTraffic:
    @pytest.mark.parametrize("workload", SERVE_WORKLOADS)
    def test_demand_matches_instance_shape(self, tiny_instance, workload):
        traffic = make_traffic(workload, tiny_instance, 1000, seed=3)
        m, n = tiny_instance.n_servers, tiny_instance.n_objects
        assert traffic.reads.shape == (m, n)
        assert traffic.writes.shape == (m, n)
        assert traffic.reads.sum() + traffic.writes.sum() > 0

    def test_worldcup_demand_matches_served_prefix(self, tiny_instance):
        # The calibration pass aggregates an identically-seeded prefix
        # of the stream the campaign will actually serve.
        n = 800
        traffic = make_traffic(
            "worldcup", tiny_instance, n, seed=5, calibration=n
        )
        reads = np.zeros_like(traffic.reads)
        writes = np.zeros_like(traffic.writes)
        for req in traffic.stream:
            if req.kind == "read":
                reads[req.server, req.obj] += 1
            else:
                writes[req.server, req.obj] += 1
        np.testing.assert_array_equal(reads, traffic.reads)
        np.testing.assert_array_equal(writes, traffic.writes)

    def test_unknown_workload_rejected(self, tiny_instance):
        with pytest.raises(ConfigurationError):
            make_traffic("nope", tiny_instance, 100)

    def test_with_demand_replaces_only_demand(self, tiny_instance):
        traffic = make_traffic("drift", tiny_instance, 400, seed=1)
        inst = with_demand(tiny_instance, traffic)
        np.testing.assert_array_equal(inst.reads, traffic.reads)
        np.testing.assert_array_equal(inst.writes, traffic.writes)
        np.testing.assert_array_equal(inst.cost, tiny_instance.cost)
        np.testing.assert_array_equal(
            inst.primaries, tiny_instance.primaries
        )
        np.testing.assert_array_equal(
            inst.capacities, tiny_instance.capacities
        )
