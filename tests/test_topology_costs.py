"""Tests for repro.topology.costs."""

import numpy as np
import pytest

from repro.errors import InfeasibleInstanceError
from repro.topology import Topology, cost_matrix, propagation_delays, random_graph
from repro.topology.costs import COPPER_SPEED_M_PER_S


class TestCostMatrix:
    def test_line_graph_paths(self):
        t = Topology(n_nodes=3, edges=[(0, 1), (1, 2)], weights=[2.0, 3.0])
        c = cost_matrix(t)
        assert c[0, 1] == 2.0
        assert c[0, 2] == 5.0  # sum of the links on the path
        assert c[2, 0] == 5.0

    def test_shortcut_taken(self):
        t = Topology(
            n_nodes=3, edges=[(0, 1), (1, 2), (0, 2)], weights=[1.0, 1.0, 10.0]
        )
        c = cost_matrix(t)
        assert c[0, 2] == 2.0  # the two-hop path beats the direct link

    def test_symmetric_zero_diag(self):
        t = random_graph(25, 0.3, seed=0)
        c = cost_matrix(t)
        assert np.array_equal(c, c.T)
        assert np.all(np.diag(c) == 0.0)

    def test_triangle_inequality(self):
        c = cost_matrix(random_graph(20, 0.4, seed=1))
        # Shortest-path closures satisfy c(i,k) <= c(i,j) + c(j,k).
        via = (c[:, :, None] + c[None, :, :]).min(axis=1)  # min_j c(i,j)+c(j,k)
        assert np.all(c <= via + 1e-9)

    def test_disconnected_raises(self):
        t = Topology(n_nodes=4, edges=[(0, 1), (2, 3)], weights=[1.0, 1.0])
        with pytest.raises(InfeasibleInstanceError):
            cost_matrix(t)

    def test_disconnected_unvalidated(self):
        t = Topology(n_nodes=4, edges=[(0, 1), (2, 3)], weights=[1.0, 1.0])
        c = cost_matrix(t, validate=False)
        assert np.isinf(c[0, 2])

    def test_single_node(self):
        t = Topology(n_nodes=1, edges=np.empty((0, 2)), weights=np.empty(0))
        assert cost_matrix(t).shape == (1, 1)

    def test_edgeless_multinode_raises(self):
        t = Topology(n_nodes=2, edges=np.empty((0, 2)), weights=np.empty(0))
        with pytest.raises(InfeasibleInstanceError):
            cost_matrix(t)

    def test_nonnegative(self):
        c = cost_matrix(random_graph(15, 0.5, seed=2))
        assert (c >= 0).all()


class TestPropagationDelays:
    def test_scaling(self):
        c = np.array([[0.0, 2.0], [2.0, 0.0]])
        d = propagation_delays(c, meters_per_cost_unit=1000.0)
        assert d[0, 1] == pytest.approx(2000.0 / COPPER_SPEED_M_PER_S)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            propagation_delays(np.zeros((2, 2)), meters_per_cost_unit=0.0)
