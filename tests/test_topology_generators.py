"""Tests for the four topology generators and the registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology import (
    make_topology,
    powerlaw_graph,
    random_graph,
    transit_stub_graph,
    waxman_graph,
)


class TestRandomGraph:
    def test_connected(self):
        assert random_graph(30, 0.4, seed=0).is_connected()

    def test_deterministic(self):
        a = random_graph(20, 0.5, seed=1)
        b = random_graph(20, 0.5, seed=1)
        assert np.array_equal(a.edges, b.edges)
        assert np.array_equal(a.weights, b.weights)

    def test_edge_probability_respected(self):
        # With p=0.5 over 40 nodes, expect roughly 390 of 780 pairs.
        t = random_graph(40, 0.5, seed=2)
        assert 300 < t.n_edges < 480

    def test_p_zero_still_connected(self):
        t = random_graph(10, 0.0, seed=3)
        assert t.is_connected()
        assert t.n_edges == 9  # exactly the bridging chain

    def test_p_one_complete(self):
        t = random_graph(8, 1.0, seed=4)
        assert t.n_edges == 8 * 7 // 2

    def test_weight_range(self):
        t = random_graph(15, 0.6, weight_range=(2.0, 3.0), seed=5)
        assert t.weights.min() >= 2.0 and t.weights.max() <= 3.0

    def test_bad_weight_range(self):
        with pytest.raises(ValueError):
            random_graph(5, 0.5, weight_range=(0.0, 1.0))

    def test_bad_p(self):
        with pytest.raises(ConfigurationError):
            random_graph(5, 1.5)


class TestWaxmanGraph:
    def test_connected(self):
        assert waxman_graph(30, seed=0).is_connected()

    def test_positions_attached(self):
        t = waxman_graph(12, seed=1)
        assert t.positions is not None and t.positions.shape == (12, 2)

    def test_costs_track_distance(self):
        t = waxman_graph(40, seed=2, min_cost=0.01)
        # Link cost must be proportional to plane distance (up to floor).
        pos = t.positions
        for (u, v), w in list(zip(t.edges, t.weights))[:20]:
            d = np.linalg.norm(pos[u] - pos[v])
            expected = max(0.01, 10.0 * d / np.sqrt(2))
            assert w == pytest.approx(expected)

    def test_locality_beta(self):
        # Smaller beta should yield shorter links on average.
        short = waxman_graph(60, beta=0.05, seed=3)
        long_ = waxman_graph(60, beta=0.9, seed=3)
        assert short.weights.mean() < long_.weights.mean()

    def test_deterministic(self):
        a, b = waxman_graph(15, seed=9), waxman_graph(15, seed=9)
        assert np.array_equal(a.edges, b.edges)


class TestTransitStub:
    def test_node_count(self):
        t = transit_stub_graph(2, 3, 2, 4, seed=0)
        assert t.n_nodes == 2 * 3 * (1 + 2 * 4)

    def test_connected(self):
        assert transit_stub_graph(2, 4, 2, 4, seed=1).is_connected()

    def test_no_stubs(self):
        t = transit_stub_graph(1, 5, 0, 3, seed=2)
        assert t.n_nodes == 5
        assert t.is_connected()

    def test_stub_links_cheaper_than_transit(self):
        t = transit_stub_graph(2, 4, 2, 4, seed=3, jitter=0.0)
        ws = sorted(t.weights)
        # With jitter 0, exact cost classes appear: 2 (stub), 8 (ts), 20/30.
        assert min(ws) == pytest.approx(2.0)
        assert max(ws) >= 20.0

    def test_deterministic(self):
        a = transit_stub_graph(2, 3, 1, 3, seed=5)
        b = transit_stub_graph(2, 3, 1, 3, seed=5)
        assert np.array_equal(a.edges, b.edges)
        assert np.array_equal(a.weights, b.weights)


class TestPowerlawGraph:
    def test_connected(self):
        assert powerlaw_graph(50, 2, seed=0).is_connected()

    def test_edge_count(self):
        t = powerlaw_graph(50, m=2, seed=1)
        # clique(3) + 2 per arriving node
        assert t.n_edges == 3 + 2 * (50 - 3)

    def test_heavy_tail(self):
        t = powerlaw_graph(300, m=2, seed=2)
        deg = t.degree()
        assert deg.max() > 4 * np.median(deg)

    def test_n_le_m_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_graph(3, 3)

    def test_deterministic(self):
        a, b = powerlaw_graph(30, seed=7), powerlaw_graph(30, seed=7)
        assert np.array_equal(a.edges, b.edges)


class TestRegistry:
    @pytest.mark.parametrize("kind", ["random", "waxman", "powerlaw"])
    def test_make_exact_size(self, kind):
        t = make_topology(kind, 25, seed=0)
        assert t.n_nodes == 25

    def test_transit_stub_at_least(self):
        t = make_topology("transit-stub", 25, seed=0)
        assert t.n_nodes >= 25

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            make_topology("hypercube", 8)

    def test_kwargs_forwarded(self):
        t = make_topology("random", 10, seed=0, p=1.0)
        assert t.n_edges == 45
