"""Tests for repro.topology.graph."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology.graph import Topology, ensure_connected


def triangle() -> Topology:
    return Topology(
        n_nodes=3, edges=[(0, 1), (1, 2), (0, 2)], weights=[1.0, 2.0, 3.0]
    )


class TestTopologyValidation:
    def test_valid(self):
        t = triangle()
        assert t.n_edges == 3

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(n_nodes=0, edges=np.empty((0, 2)), weights=np.empty(0))

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="weights"):
            Topology(n_nodes=2, edges=[(0, 1)], weights=[1.0, 2.0])

    def test_endpoint_out_of_range(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            Topology(n_nodes=2, edges=[(0, 5)], weights=[1.0])

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError, match="loops"):
            Topology(n_nodes=2, edges=[(1, 1)], weights=[1.0])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            Topology(n_nodes=2, edges=[(0, 1)], weights=[0.0])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            Topology(n_nodes=3, edges=[(0, 1), (1, 0)], weights=[1.0, 1.0])

    def test_positions_shape_checked(self):
        with pytest.raises(ConfigurationError, match="positions"):
            Topology(
                n_nodes=2,
                edges=[(0, 1)],
                weights=[1.0],
                positions=np.zeros((3, 2)),
            )


class TestTopologyQueries:
    def test_degree(self):
        assert np.array_equal(triangle().degree(), [2, 2, 2])

    def test_degree_isolated(self):
        t = Topology(n_nodes=3, edges=[(0, 1)], weights=[1.0])
        assert np.array_equal(t.degree(), [1, 1, 0])

    def test_adjacency_symmetric(self):
        a = triangle().adjacency()
        assert np.array_equal(a, a.T)
        assert a[0, 1] == 1.0 and a[0, 2] == 3.0

    def test_iter_edges(self):
        edges = list(triangle().iter_edges())
        assert (0, 1, 1.0) in edges and len(edges) == 3

    def test_is_connected_true(self):
        assert triangle().is_connected()

    def test_is_connected_false(self):
        t = Topology(n_nodes=3, edges=[(0, 1)], weights=[1.0])
        assert not t.is_connected()

    def test_single_node_connected(self):
        t = Topology(n_nodes=1, edges=np.empty((0, 2)), weights=np.empty(0))
        assert t.is_connected()

    def test_to_networkx(self):
        g = triangle().to_networkx()
        assert g.number_of_nodes() == 3
        assert g[0][2]["weight"] == 3.0


class TestEnsureConnected:
    def test_already_connected_adds_nothing(self, rng):
        added = ensure_connected([(0, 1), (1, 2)], 3, rng, lambda u, v: 1.0)
        assert added == []

    def test_bridges_components(self, rng):
        added = ensure_connected([(0, 1), (2, 3)], 4, rng, lambda u, v: 5.0)
        assert len(added) == 1
        u, v, w = added[0]
        assert w == 5.0
        assert {u < 2, v < 2} == {True, False}

    def test_all_isolated(self, rng):
        added = ensure_connected([], 4, rng, lambda u, v: 1.0)
        assert len(added) == 3  # chain of 4 singletons
