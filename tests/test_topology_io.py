"""Tests for topology edge-list file I/O."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology import random_graph, read_edge_list, write_edge_list
from repro.topology.graph import Topology


class TestRoundtrip:
    def test_roundtrip_preserves_graph(self, tmp_path):
        topo = random_graph(20, 0.4, seed=1)
        path = write_edge_list(topo, tmp_path / "g.txt")
        loaded = read_edge_list(path)
        assert loaded.n_nodes == topo.n_nodes
        a = {(u, v): w for u, v, w in topo.iter_edges()}
        b = {(u, v): w for u, v, w in loaded.iter_edges()}
        assert a.keys() == b.keys()
        for k in a:
            assert a[k] == pytest.approx(b[k])

    def test_roundtrip_cost_matrix_identical(self, tmp_path):
        from repro.topology import cost_matrix

        topo = random_graph(15, 0.5, seed=2)
        loaded = read_edge_list(write_edge_list(topo, tmp_path / "g.txt"))
        assert np.allclose(cost_matrix(topo), cost_matrix(loaded))

    def test_name_from_stem(self, tmp_path):
        topo = random_graph(5, 0.8, seed=3)
        loaded = read_edge_list(write_edge_list(topo, tmp_path / "mynet.txt"))
        assert loaded.name == "mynet"


class TestParsing:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# hello\n\nnodes 3\n0 1 1.5\n\n# bye\n1 2 2.0\n")
        topo = read_edge_list(path)
        assert topo.n_nodes == 3 and topo.n_edges == 2

    def test_nodes_header_optional(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1.0\n1 4 2.0\n")
        assert read_edge_list(path).n_nodes == 5

    def test_isolated_trailing_nodes_need_header(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("nodes 6\n0 1 1.0\n")
        assert read_edge_list(path).n_nodes == 6

    def test_malformed_edge_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(ConfigurationError, match=":1"):
            read_edge_list(path)

    def test_non_numeric_edge(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 one 1.0\n")
        with pytest.raises(ConfigurationError):
            read_edge_list(path)

    def test_bad_nodes_header(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("nodes many\n0 1 1.0\n")
        with pytest.raises(ConfigurationError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ConfigurationError):
            read_edge_list(path)

    def test_structural_validation_applies(self, tmp_path):
        # Self-loops are rejected by the Topology constructor.
        path = tmp_path / "g.txt"
        path.write_text("0 0 1.0\n")
        with pytest.raises(ConfigurationError):
            read_edge_list(path)

    def test_loaded_topology_usable_in_pipeline(self, tmp_path):
        from repro.drp.instance import build_instance
        from repro.workload.synthetic import synthesize_workload
        from repro.core.agt_ram import run_agt_ram

        topo = random_graph(10, 0.5, seed=4)
        loaded = read_edge_list(write_edge_list(topo, tmp_path / "g.txt"))
        w = synthesize_workload(10, 30, total_requests=3_000, seed=5)
        inst = build_instance(loaded, w, capacity_fraction=0.3, seed=6)
        assert run_agt_ram(inst).otc > 0
