"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_children


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss).random(3)
        b = as_generator(np.random.SeedSequence(7)).random(3)
        assert np.array_equal(a, b)


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_children_independent(self):
        a, b = spawn_children(3, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_from_int(self):
        a1, b1 = spawn_children(9, 2)
        a2, b2 = spawn_children(9, 2)
        assert np.array_equal(a1.random(4), a2.random(4))
        assert np.array_equal(b1.random(4), b2.random(4))

    def test_spawn_from_generator(self):
        g = np.random.default_rng(5)
        kids = spawn_children(g, 3)
        assert len(kids) == 3
        vals = [k.random() for k in kids]
        assert len(set(vals)) == 3


class TestRngFactory:
    def test_same_name_same_stream(self):
        f1, f2 = RngFactory(11), RngFactory(11)
        assert np.array_equal(f1.get("topology").random(4), f2.get("topology").random(4))

    def test_order_independence(self):
        f1, f2 = RngFactory(11), RngFactory(11)
        f1.get("a")
        x = f1.get("b").random(4)
        y = f2.get("b").random(4)  # "b" requested first here
        assert np.array_equal(x, y)

    def test_distinct_names_distinct_streams(self):
        f = RngFactory(11)
        assert not np.array_equal(f.get("a").random(6), f.get("b").random(6))

    def test_cached_instance(self):
        f = RngFactory(11)
        assert f.get("x") is f.get("x")


class TestSubstream:
    def test_deterministic(self):
        from repro.utils.rng import substream

        a = substream(42, "serving/latency").random(5)
        b = substream(42, "serving/latency").random(5)
        assert np.array_equal(a, b)

    def test_null_composition_identity(self):
        # Deriving (and consuming) any number of *other* substreams
        # must not perturb a named stream's draws.
        from repro.utils.rng import substream

        baseline = substream(7, "serving/latency").random(8)
        substream(7, "serving/backoff").random(100)
        substream(7, "workload/epochs").random(3)
        again = substream(7, "serving/latency").random(8)
        assert np.array_equal(baseline, again)

    def test_distinct_names_distinct_streams(self):
        from repro.utils.rng import substream

        a = substream(3, "alpha").random(6)
        b = substream(3, "beta").random(6)
        assert not np.array_equal(a, b)

    def test_distinct_seeds_distinct_streams(self):
        from repro.utils.rng import substream

        a = substream(1, "alpha").random(6)
        b = substream(2, "alpha").random(6)
        assert not np.array_equal(a, b)

    def test_generator_seed_position_irrelevant(self):
        # Substreams key off the generator's seeding entropy, not its
        # current position: consuming draws first changes nothing.
        from repro.utils.rng import substream

        g1 = np.random.default_rng(5)
        g2 = np.random.default_rng(5)
        g2.random(50)
        a = substream(g1, "x").random(4)
        b = substream(g2, "x").random(4)
        assert np.array_equal(a, b)

    def test_seed_sequence_accepted(self):
        from repro.utils.rng import substream

        a = substream(np.random.SeedSequence(9), "x").random(4)
        b = substream(9, "x").random(4)
        assert np.array_equal(a, b)
