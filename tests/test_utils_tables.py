"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import render_table


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "2.50" in lines[2]
        assert "4.25" in lines[3]

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159]])
        assert "3.14" in out
        assert "3.14159" not in out

    def test_string_cells_pass_through(self):
        out = render_table(["name"], [["M=50, N=300"]])
        assert "M=50, N=300" in out
