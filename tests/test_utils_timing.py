"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Timer, format_seconds


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_accumulates_across_uses(self):
        t = Timer()
        with t:
            time.sleep(0.005)
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed > first

    def test_double_start_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_reset_while_running_raises(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.reset()
        t.stop()


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(5e-6) == "5.0 us"

    def test_milliseconds(self):
        assert format_seconds(0.0132) == "13.2 ms"

    def test_seconds(self):
        assert format_seconds(4.714) == "4.71 s"

    def test_minutes(self):
        assert format_seconds(123.0) == "2m 03s"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)
