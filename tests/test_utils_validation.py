"""Tests for repro.utils.validation."""

import pytest

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_finite_array,
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True, None])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, "x")

    def test_message_names_param(self):
        with pytest.raises(ConfigurationError, match="n_servers"):
            check_positive_int(-2, "n_servers")


class TestCheckPositive:
    def test_accepts_float(self):
        assert check_positive(0.5, "x") == 0.5

    def test_accepts_int(self):
        assert check_positive(2, "x") == 2.0

    @pytest.mark.parametrize("bad", [0, -0.1, "a", True, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive(bad, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, "p", None])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability(bad, "p")


class TestCheckFraction:
    def test_open_left(self):
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "f", open_left=True)
        assert check_fraction(0.1, "f", open_left=True) == 0.1

    def test_open_right(self):
        with pytest.raises(ConfigurationError):
            check_fraction(1.0, "f", open_right=True)
        assert check_fraction(0.9, "f", open_right=True) == 0.9


class TestCheckFiniteArray:
    def test_accepts_and_returns_input(self):
        arr = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert check_finite_array(arr, "m") is arr

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ConfigurationError, match="finite"):
            check_finite_array(np.array([1.0, bad]), "m")

    def test_names_first_offending_index_1d(self):
        with pytest.raises(ConfigurationError, match="entry 2 is nan"):
            check_finite_array(np.array([0.0, 1.0, np.nan]), "m")

    def test_names_first_offending_index_2d(self):
        arr = np.array([[0.0, 1.0], [np.inf, 2.0]])
        with pytest.raises(ConfigurationError, match=r"entry \(1, 0\)"):
            check_finite_array(arr, "m")

    def test_nonnegative_gate(self):
        check_finite_array(np.array([0.0, 1.0]), "m", nonnegative=True)
        with pytest.raises(ConfigurationError, match="non-negative"):
            check_finite_array(np.array([1.0, -2.0]), "m", nonnegative=True)

    def test_message_is_actionable(self):
        with pytest.raises(ConfigurationError, match="generator or input file"):
            check_finite_array(np.array([np.nan]), "reads")
