"""Tests for repro.workload.clients."""

import numpy as np
import pytest

from repro.workload.clients import map_clients_to_servers


class TestMapping:
    def test_shape_and_range(self):
        m = map_clients_to_servers(100, 10, seed=0)
        assert m.shape == (100,)
        assert m.min() >= 0 and m.max() < 10

    def test_uniform_when_no_skew(self):
        m = map_clients_to_servers(50_000, 5, skew=0.0, seed=1)
        counts = np.bincount(m, minlength=5)
        assert counts.max() / counts.min() < 1.1

    def test_skew_concentrates(self):
        m = map_clients_to_servers(5_000, 20, skew=5.0, seed=2)
        counts = np.sort(np.bincount(m, minlength=20))[::-1]
        # Top server hosts far more than a uniform share.
        assert counts[0] > 3 * 5_000 / 20

    def test_one_to_m_property(self):
        # Every client has exactly one server (an assignment array can't
        # violate this, but the distribution must cover the client set).
        m = map_clients_to_servers(7, 3, seed=3)
        assert len(m) == 7

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            map_clients_to_servers(5, 3, skew=-1.0)

    def test_deterministic(self):
        a = map_clients_to_servers(30, 6, seed=5)
        b = map_clients_to_servers(30, 6, seed=5)
        assert np.array_equal(a, b)
