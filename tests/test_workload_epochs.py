"""Tests for trace-driven epoch slicing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.epochs import epochs_from_trace
from repro.workload.trace import ObjectCatalog, Request, Trace
from repro.workload.worldcup import WorldCupLogGenerator


@pytest.fixture(scope="module")
def trace():
    gen = WorldCupLogGenerator(n_objects=40, n_clients=12, seed=3)
    return gen.sample_trace(4_000)


class TestEpochsFromTrace:
    def test_request_mass_conserved(self, trace):
        mapping = np.zeros(trace.n_clients, dtype=int)
        epochs = epochs_from_trace(trace, mapping, 4, n_epochs=6)
        total = sum(e.workload.total_requests() for e in epochs)
        assert total == len(trace)

    def test_epoch_count(self, trace):
        mapping = np.zeros(trace.n_clients, dtype=int)
        assert len(epochs_from_trace(trace, mapping, 4, n_epochs=8)) == 8

    def test_diurnal_heaviness_varies(self, trace):
        # The WC generator's diurnal curve makes some windows much
        # heavier than others.
        mapping = np.zeros(trace.n_clients, dtype=int)
        epochs = epochs_from_trace(trace, mapping, 4, n_epochs=8)
        totals = [e.workload.total_requests() for e in epochs]
        assert max(totals) > 1.3 * max(1, min(totals))

    def test_sizes_shared(self, trace):
        mapping = np.zeros(trace.n_clients, dtype=int)
        epochs = epochs_from_trace(trace, mapping, 4, n_epochs=3)
        for e in epochs[1:]:
            assert np.array_equal(e.workload.sizes, epochs[0].workload.sizes)

    def test_single_timestamp_trace(self):
        cat = ObjectCatalog(sizes=[1])
        t = Trace(
            catalog=cat,
            requests=[Request(client=0, obj=0, kind="read", timestamp=5.0)] * 3,
            n_clients=1,
        )
        epochs = epochs_from_trace(t, np.array([0]), 2, n_epochs=4)
        assert epochs[0].workload.total_requests() == 3

    def test_empty_trace_rejected(self):
        t = Trace(catalog=ObjectCatalog(sizes=[1]), n_clients=1)
        with pytest.raises(ConfigurationError):
            epochs_from_trace(t, np.array([0]), 2, n_epochs=2)

    def test_feeds_adaptive_replicator(self, trace):
        """End-to-end: trace-driven epochs drive adaptation."""
        from repro.core.adaptive import AdaptiveReplicator
        from repro.drp.instance import build_instance
        from repro.topology import random_graph
        from repro.workload.clients import map_clients_to_servers
        from repro.workload.stats import trace_to_matrices
        from repro.workload.synthetic import SyntheticWorkload

        n_servers = 8
        topo = random_graph(n_servers, 0.5, seed=4)
        mapping = map_clients_to_servers(trace.n_clients, n_servers, seed=5)
        reads, writes = trace_to_matrices(trace, mapping, n_servers)
        template = build_instance(
            topo,
            SyntheticWorkload(
                reads=reads,
                writes=writes,
                sizes=np.asarray(trace.catalog.sizes),
                rw_ratio=trace.read_write_ratio(),
            ),
            capacity_fraction=0.3,
            seed=6,
        )
        epochs = epochs_from_trace(trace, mapping, n_servers, n_epochs=4)
        out = AdaptiveReplicator(policy="adaptive").run(template, epochs)
        assert len(out) == 4
        for o in out:
            assert o.savings_percent >= -1e-6
