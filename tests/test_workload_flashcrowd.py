"""Tests for flash-crowd workload generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.flashcrowd import (
    FlashCrowd,
    crowd_traffic_share,
    flash_crowd_workloads,
)


@pytest.fixture(scope="module")
def generated():
    return flash_crowd_workloads(
        10,
        60,
        6,
        total_requests=40_000,
        n_crowds=1,
        crowd_size=3,
        crowd_intensity=30.0,
        crowd_duration=2,
        seed=5,
    )


class TestGeneration:
    def test_shapes(self, generated):
        epochs, crowds = generated
        assert len(epochs) == 6
        assert len(crowds) == 1
        for e in epochs:
            assert e.workload.reads.shape == (10, 60)

    def test_crowd_within_horizon(self, generated):
        _, crowds = generated
        c = crowds[0]
        assert 0 <= c.onset and c.onset + c.duration <= 6
        assert len(c.objects) == 3

    def test_crowd_absorbs_traffic(self, generated):
        epochs, crowds = generated
        c = crowds[0]
        share = crowd_traffic_share(epochs, c)
        during = np.mean([share[e] for e in range(c.onset, c.onset + c.duration)])
        outside = [
            share[e]
            for e in range(len(epochs))
            if not (c.onset <= e < c.onset + c.duration)
        ]
        assert during > 5 * np.mean(outside)

    def test_budget_roughly_constant(self, generated):
        epochs, _ = generated
        totals = [e.workload.total_requests() for e in epochs]
        assert max(totals) < 1.2 * min(totals)

    def test_sizes_constant(self, generated):
        epochs, _ = generated
        for e in epochs[1:]:
            assert np.array_equal(e.workload.sizes, epochs[0].workload.sizes)

    def test_no_crowds(self):
        epochs, crowds = flash_crowd_workloads(
            6, 30, 3, total_requests=5_000, n_crowds=0, seed=1
        )
        assert crowds == []
        assert len(epochs) == 3

    def test_deterministic(self):
        a, ca = flash_crowd_workloads(6, 30, 3, total_requests=5_000, seed=9)
        b, cb = flash_crowd_workloads(6, 30, 3, total_requests=5_000, seed=9)
        assert ca == cb
        assert np.array_equal(a[0].workload.reads, b[0].workload.reads)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_crowds": -1},
            {"crowd_size": 100},
            {"crowd_intensity": 0.0},
            {"crowd_duration": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(Exception):
            flash_crowd_workloads(6, 30, 3, **kwargs)


class TestAdaptiveUnderFlashCrowd:
    def test_adaptive_recovers_from_crowd(self):
        """The adaptive protocol must beat the frozen scheme during a
        flash crowd — the event moves traffic onto cold objects the
        initial placement ignored."""
        from repro.core.adaptive import AdaptiveReplicator
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.instances import paper_instance

        template = paper_instance(
            ExperimentConfig(
                n_servers=10,
                n_objects=60,
                total_requests=40_000,
                rw_ratio=0.95,
                capacity_fraction=0.3,
                seed=55,
                name="flash-test",
            )
        )
        epochs, crowds = flash_crowd_workloads(
            10,
            60,
            5,
            total_requests=40_000,
            n_crowds=1,
            crowd_size=3,
            crowd_intensity=40.0,
            crowd_duration=3,
            seed=56,
        )
        c = crowds[0]
        adaptive = AdaptiveReplicator(policy="adaptive").run(template, epochs)
        static = AdaptiveReplicator(policy="static").run(template, epochs)
        crowd_epochs = [
            e for e in range(1, len(epochs)) if c.onset <= e < c.onset + c.duration
        ]
        if crowd_epochs:
            e = crowd_epochs[-1]
            assert adaptive[e].savings_percent >= static[e].savings_percent - 1e-9
