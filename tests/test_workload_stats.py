"""Tests for repro.workload.stats (trace aggregation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.stats import aggregate_trace, trace_to_matrices
from repro.workload.trace import ObjectCatalog, Request, Trace


def small_trace() -> Trace:
    cat = ObjectCatalog(sizes=[1, 2, 3])
    reqs = [
        Request(client=0, obj=0, kind="read"),
        Request(client=0, obj=0, kind="read"),
        Request(client=0, obj=1, kind="write"),
        Request(client=1, obj=2, kind="read"),
        Request(client=2, obj=0, kind="write"),
    ]
    return Trace(catalog=cat, requests=reqs)


class TestAggregateTrace:
    def test_counts(self):
        agg = aggregate_trace(small_trace())
        assert agg.reads[0, 0] == 2
        assert agg.writes[0, 1] == 1
        assert agg.reads[1, 2] == 1
        assert agg.writes[2, 0] == 1

    def test_totals(self):
        agg = aggregate_trace(small_trace())
        assert agg.total_requests() == 5

    def test_shapes(self):
        agg = aggregate_trace(small_trace())
        assert agg.reads.shape == (3, 3) and agg.writes.shape == (3, 3)

    def test_empty_trace(self):
        t = Trace(catalog=ObjectCatalog(sizes=[1]), n_clients=2)
        agg = aggregate_trace(t)
        assert agg.reads.sum() == 0 and agg.writes.sum() == 0


class TestTraceToMatrices:
    def test_folding(self):
        t = small_trace()
        mapping = np.array([0, 0, 1])  # clients 0,1 -> server 0; client 2 -> 1
        reads, writes = trace_to_matrices(t, mapping, n_servers=2)
        assert reads[0, 0] == 2 and reads[0, 2] == 1
        assert writes[1, 0] == 1
        assert reads.sum() == 3 and writes.sum() == 2

    def test_preserves_total(self):
        t = small_trace()
        mapping = np.array([1, 1, 1])
        reads, writes = trace_to_matrices(t, mapping, n_servers=3)
        assert reads.sum() + writes.sum() == len(t)
        assert reads[0].sum() == 0  # nothing mapped to server 0

    def test_bad_mapping_shape(self):
        with pytest.raises(ConfigurationError):
            trace_to_matrices(small_trace(), np.array([0, 1]), n_servers=2)

    def test_mapping_out_of_range(self):
        with pytest.raises(ConfigurationError):
            trace_to_matrices(small_trace(), np.array([0, 1, 5]), n_servers=2)
