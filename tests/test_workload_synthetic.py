"""Tests for repro.workload.synthetic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.synthetic import synthesize_workload


class TestSynthesizeWorkload:
    def test_shapes(self):
        w = synthesize_workload(10, 40, total_requests=5_000, seed=0)
        assert w.reads.shape == (10, 40)
        assert w.writes.shape == (10, 40)
        assert w.sizes.shape == (40,)

    def test_total_requests_approx(self):
        w = synthesize_workload(20, 50, total_requests=100_000, seed=1)
        assert abs(w.total_requests() - 100_000) < 3_000  # Poisson noise

    def test_rw_ratio_realized(self):
        w = synthesize_workload(20, 50, total_requests=50_000, rw_ratio=0.9, seed=2)
        assert w.realized_rw_ratio() == pytest.approx(0.9, abs=0.01)

    def test_pure_read(self):
        w = synthesize_workload(5, 10, total_requests=2_000, rw_ratio=1.0, seed=3)
        assert w.writes.sum() == 0

    def test_pure_write(self):
        w = synthesize_workload(5, 10, total_requests=2_000, rw_ratio=0.0, seed=4)
        assert w.reads.sum() == 0

    def test_sizes_positive(self):
        w = synthesize_workload(5, 200, seed=5)
        assert (w.sizes >= 1).all()

    def test_zero_cv_constant_sizes(self):
        w = synthesize_workload(5, 10, mean_object_size=9.0, size_cv=0.0, seed=6)
        assert (w.sizes == 9).all()

    def test_popularity_skew(self):
        w = synthesize_workload(
            10, 100, total_requests=200_000, popularity_alpha=1.0, seed=7
        )
        per_obj = (w.reads + w.writes).sum(axis=0)
        assert per_obj.max() > 10 * np.median(per_obj)

    def test_server_skew_zero_uniform(self):
        w = synthesize_workload(
            8, 50, total_requests=400_000, server_skew=0.0, seed=8
        )
        per_server = (w.reads + w.writes).sum(axis=1)
        assert per_server.max() / per_server.min() < 1.1

    def test_server_skew_concentrates(self):
        w = synthesize_workload(
            20, 50, total_requests=100_000, server_skew=2.0, seed=9
        )
        per_server = np.sort((w.reads + w.writes).sum(axis=1))[::-1]
        assert per_server[0] > 5 * per_server[-1]

    def test_deterministic(self):
        a = synthesize_workload(6, 20, seed=11)
        b = synthesize_workload(6, 20, seed=11)
        assert np.array_equal(a.reads, b.reads)
        assert np.array_equal(a.sizes, b.sizes)

    def test_empty_workload_ratio_raises(self):
        w = synthesize_workload(3, 5, total_requests=0, seed=12)
        with pytest.raises(ConfigurationError):
            w.realized_rw_ratio()

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize_workload(3, 5, rw_ratio=1.5)

    def test_negative_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize_workload(3, 5, total_requests=-1)
