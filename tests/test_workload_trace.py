"""Tests for repro.workload.trace."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.trace import ObjectCatalog, Request, Trace


class TestRequest:
    def test_valid(self):
        r = Request(client=0, obj=1, kind="read")
        assert r.kind == "read"

    def test_bad_kind(self):
        with pytest.raises(ConfigurationError):
            Request(client=0, obj=0, kind="fetch")

    def test_negative_ids(self):
        with pytest.raises(ConfigurationError):
            Request(client=-1, obj=0, kind="read")

    def test_frozen(self):
        r = Request(client=0, obj=0, kind="read")
        with pytest.raises(AttributeError):
            r.obj = 5


class TestObjectCatalog:
    def test_default_names(self):
        c = ObjectCatalog(sizes=[1, 2, 3])
        assert c.names == ["object-0", "object-1", "object-2"]

    def test_total_size(self):
        assert ObjectCatalog(sizes=[1, 2, 3]).total_size() == 6

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ObjectCatalog(sizes=[1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ObjectCatalog(sizes=[])

    def test_name_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            ObjectCatalog(sizes=[1, 2], names=["a"])


class TestTrace:
    def make(self) -> Trace:
        cat = ObjectCatalog(sizes=[1, 2])
        reqs = [
            Request(client=0, obj=0, kind="read"),
            Request(client=1, obj=1, kind="write"),
            Request(client=1, obj=0, kind="read"),
        ]
        return Trace(catalog=cat, requests=reqs)

    def test_n_clients_inferred(self):
        assert self.make().n_clients == 2

    def test_counts(self):
        t = self.make()
        assert t.n_reads() == 2 and t.n_writes() == 1

    def test_rw_ratio(self):
        assert self.make().read_write_ratio() == pytest.approx(2 / 3)

    def test_empty_trace_ratio_raises(self):
        t = Trace(catalog=ObjectCatalog(sizes=[1]), n_clients=1)
        with pytest.raises(ConfigurationError):
            t.read_write_ratio()

    def test_object_out_of_catalog(self):
        with pytest.raises(ConfigurationError):
            Trace(
                catalog=ObjectCatalog(sizes=[1]),
                requests=[Request(client=0, obj=5, kind="read")],
            )

    def test_client_beyond_declared(self):
        with pytest.raises(ConfigurationError):
            Trace(
                catalog=ObjectCatalog(sizes=[1]),
                requests=[Request(client=3, obj=0, kind="read")],
                n_clients=2,
            )

    def test_extend(self):
        t = self.make()
        t.extend([Request(client=4, obj=1, kind="read")])
        assert len(t) == 4 and t.n_clients == 5

    def test_extend_invalid_object(self):
        t = self.make()
        with pytest.raises(ConfigurationError):
            t.extend([Request(client=0, obj=9, kind="read")])

    def test_iter(self):
        assert all(isinstance(r, Request) for r in self.make())
