"""Tests for the synthetic WorldCup'98 log generator and parser."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.worldcup import (
    WorldCupLogGenerator,
    parse_common_log,
    parse_common_log_line,
)
from repro.workload.zipf import empirical_zipf_alpha


@pytest.fixture(scope="module")
def gen() -> WorldCupLogGenerator:
    return WorldCupLogGenerator(n_objects=80, n_clients=30, seed=42)


class TestGenerator:
    def test_catalog_sizes_positive(self, gen):
        assert (gen.catalog.sizes >= 1).all()

    def test_mean_size_roughly_requested(self):
        g = WorldCupLogGenerator(
            n_objects=4000, n_clients=10, mean_object_size=20.0, size_cv=0.5, seed=1
        )
        assert 17.0 < g.catalog.sizes.mean() < 23.0

    def test_zero_cv_constant_sizes(self):
        g = WorldCupLogGenerator(n_objects=10, mean_object_size=7.0, size_cv=0.0, seed=2)
        assert (g.catalog.sizes == 7).all()

    def test_requests_in_range(self, gen):
        reqs = gen.sample_requests(500)
        assert all(0 <= r.obj < 80 and 0 <= r.client < 30 for r in reqs)

    def test_write_fraction(self):
        g = WorldCupLogGenerator(n_objects=50, n_clients=10, write_fraction=0.2, seed=3)
        reqs = g.sample_requests(20_000)
        frac = sum(r.kind == "write" for r in reqs) / len(reqs)
        assert 0.17 < frac < 0.23

    def test_popularity_zipf_like(self):
        g = WorldCupLogGenerator(n_objects=100, n_clients=10, seed=4)
        reqs = g.sample_requests(100_000)
        counts = np.bincount([r.obj for r in reqs], minlength=100)
        alpha = empirical_zipf_alpha(counts)
        assert 0.6 < alpha < 1.1

    def test_timestamps_sorted(self, gen):
        reqs = gen.sample_requests(200)
        ts = [r.timestamp for r in reqs]
        assert ts == sorted(ts)

    def test_zero_requests(self, gen):
        assert gen.sample_requests(0) == []

    def test_negative_requests_rejected(self, gen):
        with pytest.raises(ConfigurationError):
            gen.sample_requests(-1)

    def test_trace_roundtrip(self, gen):
        trace = gen.sample_trace(300)
        assert len(trace) == 300
        assert trace.catalog is gen.catalog

    def test_deterministic(self):
        a = WorldCupLogGenerator(n_objects=20, n_clients=5, seed=9).sample_requests(50)
        b = WorldCupLogGenerator(n_objects=20, n_clients=5, seed=9).sample_requests(50)
        assert [(r.client, r.obj, r.kind) for r in a] == [
            (r.client, r.obj, r.kind) for r in b
        ]

    def test_bad_write_fraction(self):
        with pytest.raises(ConfigurationError):
            WorldCupLogGenerator(write_fraction=1.0)


class TestLogLineFormat:
    def test_line_parses_back(self, gen):
        req = gen.sample_requests(1)[0]
        line = gen.format_log_line(req)
        rec = parse_common_log_line(line)
        assert rec is not None
        assert rec["status"] == 200
        assert rec["bytes"] == req.size * 1024
        assert rec["host"] == f"client{req.client}.example.net"

    def test_write_method(self, gen):
        from repro.workload.trace import Request

        line = gen.format_log_line(Request(client=1, obj=2, kind="write", size=3))
        assert '"PUT' in line


class TestParser:
    def test_malformed_returns_none(self):
        assert parse_common_log_line("not a log line") is None

    def test_dash_bytes(self):
        line = 'h - - [01/May/1998:10:00:00 +0000] "GET /a HTTP/1.0" 200 -'
        rec = parse_common_log_line(line)
        assert rec["bytes"] == 0

    def test_real_format_line(self):
        line = (
            '4.150.159.23 - - [01/May/1998:21:30:17 +0000] '
            '"GET /images/102325.gif HTTP/1.0" 200 1555'
        )
        rec = parse_common_log_line(line)
        assert rec["path"] == "/images/102325.gif"
        assert rec["method"] == "GET"

    def test_roundtrip_trace(self, gen):
        lines = list(gen.generate_log(2_000))
        trace = parse_common_log(lines)
        assert len(trace) > 0
        # All sizes positive; client count bounded by the generator's.
        assert (np.asarray(trace.catalog.sizes) >= 1).all()
        assert trace.n_clients <= 30

    def test_roundtrip_rw_mix_preserved(self):
        g = WorldCupLogGenerator(n_objects=40, n_clients=8, write_fraction=0.3, seed=5)
        trace = parse_common_log(g.generate_log(5_000))
        assert 0.6 < trace.read_write_ratio() < 0.8

    def test_min_requests_filter(self, gen):
        lines = list(gen.generate_log(500))
        strict = parse_common_log(lines, min_requests_per_object=10)
        loose = parse_common_log(lines, min_requests_per_object=1)
        assert strict.catalog.n_objects < loose.catalog.n_objects

    def test_status_filter(self):
        lines = [
            'h - - [01/May/1998:10:00:00 +0000] "GET /a HTTP/1.0" 404 100',
        ]
        with pytest.raises(ConfigurationError):
            parse_common_log(lines, status_ok_only=True)
        trace = parse_common_log(lines, status_ok_only=False)
        assert len(trace) == 1

    def test_no_parseable_lines(self):
        with pytest.raises(ConfigurationError):
            parse_common_log(["garbage", "more garbage"])


class TestLogFileParsing:
    def test_plain_file(self, gen, tmp_path):
        path = tmp_path / "access.log"
        path.write_text("\n".join(gen.generate_log(300)) + "\n")
        from repro.workload.worldcup import parse_common_log_file

        trace = parse_common_log_file(path)
        assert len(trace) == 300

    def test_gzip_file(self, gen, tmp_path):
        import gzip

        path = tmp_path / "access.log.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("\n".join(gen.generate_log(200)) + "\n")
        from repro.workload.worldcup import parse_common_log_file

        trace = parse_common_log_file(path)
        assert len(trace) == 200

    def test_filters_forwarded(self, gen, tmp_path):
        path = tmp_path / "access.log"
        path.write_text("\n".join(gen.generate_log(400)) + "\n")
        from repro.workload.worldcup import parse_common_log_file

        strict = parse_common_log_file(path, min_requests_per_object=5)
        loose = parse_common_log_file(path, min_requests_per_object=1)
        assert strict.catalog.n_objects <= loose.catalog.n_objects
