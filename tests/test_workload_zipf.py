"""Tests for repro.workload.zipf."""

import numpy as np
import pytest

from repro.workload.zipf import empirical_zipf_alpha, sample_zipf, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(100).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, alpha=0.9)
        assert np.all(np.diff(w) < 0)

    def test_exact_ratio(self):
        w = zipf_weights(10, alpha=1.0)
        assert w[0] / w[1] == pytest.approx(2.0)  # rank1/rank2 = 2 at alpha=1

    def test_single_item(self):
        assert zipf_weights(1) == pytest.approx([1.0])

    def test_bad_n(self):
        with pytest.raises(Exception):
            zipf_weights(0)

    def test_bad_alpha(self):
        with pytest.raises(Exception):
            zipf_weights(10, alpha=-1)


class TestSampleZipf:
    def test_range(self):
        s = sample_zipf(20, 1000, seed=0)
        assert s.min() >= 0 and s.max() < 20

    def test_rank_order(self):
        s = sample_zipf(10, 50_000, alpha=1.0, seed=1)
        counts = np.bincount(s, minlength=10)
        # Item 0 must dominate item 9 decisively.
        assert counts[0] > 3 * counts[9]

    def test_zero_samples(self):
        assert len(sample_zipf(5, 0)) == 0

    def test_deterministic(self):
        assert np.array_equal(sample_zipf(9, 100, seed=3), sample_zipf(9, 100, seed=3))


class TestEmpiricalAlpha:
    def test_recovers_exponent(self):
        counts = 1e6 * zipf_weights(200, alpha=0.85)
        assert empirical_zipf_alpha(counts) == pytest.approx(0.85, abs=0.02)

    def test_from_samples(self):
        s = sample_zipf(100, 200_000, alpha=0.9, seed=4)
        alpha = empirical_zipf_alpha(np.bincount(s, minlength=100))
        assert 0.6 < alpha < 1.2

    def test_too_few_counts(self):
        with pytest.raises(ValueError):
            empirical_zipf_alpha(np.array([5.0]))
